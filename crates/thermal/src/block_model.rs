//! HotSpot-style **block mode**: one RC node per floorplan block.
//!
//! The paper notes (Sec. 6.1) that it runs the thermal simulation "in
//! grid mode for higher accuracy" — block mode is the faster, coarser
//! alternative that HotSpot offers, and it is implemented here both for
//! completeness of the substrate and as an independent cross-check of the
//! grid solver (the validation tests require the two modes to agree on
//! smooth problems).
//!
//! Model: every user layer contributes one node per floorplan block (or a
//! single die-sized node if the layer has no floorplan). Material patches
//! (TTSVs, pillars) are folded into each block's *effective* vertical
//! conductivity by area weighting. Nodes connect vertically to the
//! area-overlapping nodes of the adjacent layers and laterally to
//! edge-sharing blocks within the layer. The package is lumped: TIM, IHS
//! and sink each become one node, with the sink grounded through the
//! convection resistance (plus the optional board path from the bottom
//! layer).

use crate::error::ThermalError;
use crate::floorplan::Rect;
use crate::layer::Layer;
use crate::solve::{solve_cg_reference, SolverOptions};
use crate::stack::Stack;

/// A solved block-mode temperature result.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTemperatures {
    /// `temps[layer][block]`, deg C (one entry for floorplan-less layers).
    pub layers: Vec<Vec<f64>>,
    /// Package node temperatures `(tim, spreader, sink)`, deg C.
    pub package: (f64, f64, f64),
    /// Ambient used, deg C.
    pub ambient: f64,
}

impl BlockTemperatures {
    /// Hottest block of a layer, `(block index, deg C)`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn hotspot_of_layer(&self, layer: usize) -> (usize, f64) {
        let mut best = (0, f64::NEG_INFINITY);
        for (i, &t) in self.layers[layer].iter().enumerate() {
            if t > best.1 {
                best = (i, t);
            }
        }
        best
    }

    /// Area-weighted mean of a layer (blocks carry their own areas, which
    /// the model stores; here a plain mean over blocks is reported for
    /// floorplanned layers built by [`BlockThermalModel`], whose blocks
    /// tile the die for power layers).
    pub fn mean_of_layer(&self, layer: usize) -> f64 {
        let v = &self.layers[layer];
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Node metadata inside the assembled block model.
#[derive(Debug, Clone)]
struct BlockNode {
    rect: Rect,
    /// Effective vertical conductivity (patches folded in), W/m-K.
    lambda: f64,
    thickness: f64,
}

/// The assembled block-mode RC network for a stack.
#[derive(Debug, Clone)]
pub struct BlockThermalModel {
    /// Per user layer: the node ids of its blocks.
    layer_nodes: Vec<Vec<usize>>,
    /// Block names per layer (empty name for the die-sized node).
    block_names: Vec<Vec<String>>,
    nodes: Vec<BlockNode>,
    /// Adjacency `(a, b, G)` stored once per edge, W/K.
    edges: Vec<(usize, usize, f64)>,
    /// Conductance to ambient per node, W/K.
    g_ambient: Vec<f64>,
    /// Package node ids: (tim, spreader, sink).
    package_nodes: (usize, usize, usize),
    ambient: f64,
    options: SolverOptions,
}

impl BlockThermalModel {
    /// Builds the block-mode network for `stack`.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadStack`] for degenerate geometry.
    pub fn build(stack: &Stack) -> Result<Self, ThermalError> {
        let (w, h) = (stack.width(), stack.height());
        let die = Rect::new(0.0, 0.0, w, h);
        let pkg = stack.package();
        pkg.validate_die(w, h)?;

        let mut nodes: Vec<BlockNode> = Vec::new();
        let mut layer_nodes: Vec<Vec<usize>> = Vec::new();
        let mut block_names: Vec<Vec<String>> = Vec::new();

        for layer in stack.layers() {
            let mut ids = Vec::new();
            let mut names = Vec::new();
            match layer.floorplan() {
                Some(fp) if !fp.is_empty() => {
                    for (bi, block) in fp.blocks().iter().enumerate() {
                        let lambda = effective_lambda(layer, bi, block.rect());
                        ids.push(nodes.len());
                        names.push(block.name().to_string());
                        nodes.push(BlockNode {
                            rect: *block.rect(),
                            lambda,
                            thickness: layer.thickness(),
                        });
                    }
                }
                _ => {
                    // Die-sized node; fold patches into the average.
                    let lambda = effective_lambda_unfloorplanned(layer, &die);
                    ids.push(nodes.len());
                    names.push(String::new());
                    nodes.push(BlockNode {
                        rect: die,
                        lambda,
                        thickness: layer.thickness(),
                    });
                }
            }
            layer_nodes.push(ids);
            block_names.push(names);
        }

        // Package nodes: TIM, spreader, sink (die-sized lumped).
        let tim_id = nodes.len();
        nodes.push(BlockNode {
            rect: die,
            lambda: pkg.tim_material().conductivity().get(),
            thickness: pkg.tim_thickness(),
        });
        let sp_id = nodes.len();
        nodes.push(BlockNode {
            rect: die, // center portion; spreading folded into convection
            lambda: pkg.spreader_material().conductivity().get(),
            thickness: pkg.spreader_thickness(),
        });
        let sink_id = nodes.len();
        nodes.push(BlockNode {
            rect: die,
            lambda: pkg.sink_material().conductivity().get(),
            thickness: pkg.sink_thickness(),
        });

        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        let mut g_ambient = vec![0.0; nodes.len()];

        // Vertical coupling between consecutive user layers (and the top
        // layer to the TIM, TIM to spreader, spreader to sink).
        let vertical_g = |a: &BlockNode, b: &BlockNode| -> f64 {
            let overlap = a.rect.intersection_area(&b.rect);
            if overlap <= 0.0 {
                return 0.0;
            }
            overlap / (a.thickness / (2.0 * a.lambda) + b.thickness / (2.0 * b.lambda))
        };
        for l in 0..layer_nodes.len() {
            let above: Vec<usize> = if l == 0 {
                vec![tim_id]
            } else {
                layer_nodes[l - 1].clone()
            };
            for &i in &layer_nodes[l] {
                for &j in &above {
                    let (na, nb) = (&nodes[i], &nodes[j]);
                    let g = vertical_g(na, nb);
                    if g > 0.0 {
                        edges.push((i, j, g));
                    }
                }
            }
        }
        let g_tim_sp = vertical_g(&nodes[tim_id], &nodes[sp_id]);
        edges.push((tim_id, sp_id, g_tim_sp));
        let g_sp_sink = vertical_g(&nodes[sp_id], &nodes[sink_id]);
        edges.push((sp_id, sink_id, g_sp_sink));

        // Lateral coupling between edge-sharing blocks within each layer.
        for ids in &layer_nodes {
            for (ai, &i) in ids.iter().enumerate() {
                for &j in ids.iter().skip(ai + 1) {
                    if let Some(g) = lateral_g(&nodes[i], &nodes[j]) {
                        edges.push((i, j, g));
                    }
                }
            }
        }

        // Sink to ambient: the lumped convection resistance plus the
        // package's lateral spreading advantage, approximated by the full
        // convection resistance (block mode does not resolve periphery).
        g_ambient[sink_id] = 1.0 / pkg.convection_resistance();
        // Optional board path from the bottom layer's nodes, area-shared.
        if let Some(r_board) = pkg.board_resistance() {
            let bottom = layer_nodes.last().expect("stack has layers");
            let total_area: f64 = bottom.iter().map(|&i| nodes[i].rect.area()).sum();
            for &i in bottom {
                g_ambient[i] = nodes[i].rect.area() / total_area / r_board;
            }
        }

        Ok(BlockThermalModel {
            layer_nodes,
            block_names,
            nodes,
            edges,
            g_ambient,
            package_nodes: (tim_id, sp_id, sink_id),
            ambient: pkg.ambient(),
            options: SolverOptions::default(),
        })
    }

    /// Number of nodes (blocks + 3 package nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of a named block within a user layer.
    pub fn block_index(&self, layer: usize, name: &str) -> Option<usize> {
        self.block_names.get(layer)?.iter().position(|n| n == name)
    }

    /// Solves steady state for per-layer, per-block powers (W). The outer
    /// vector must match the layer count; inner vectors the block counts
    /// (empty inner vectors mean zero power).
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerMapMismatch`] on shape mismatch;
    /// [`ThermalError::NoConvergence`] if CG stalls.
    pub fn steady_state(
        &self,
        block_powers: &[Vec<f64>],
    ) -> Result<BlockTemperatures, ThermalError> {
        if block_powers.len() != self.layer_nodes.len() {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: block_powers.len(),
                model_nodes: self.layer_nodes.len(),
            });
        }
        let n = self.nodes.len();
        let mut b = vec![0.0; n];
        for (l, powers) in block_powers.iter().enumerate() {
            if powers.is_empty() {
                continue;
            }
            if powers.len() != self.layer_nodes[l].len() {
                return Err(ThermalError::PowerMapMismatch {
                    map_nodes: powers.len(),
                    model_nodes: self.layer_nodes[l].len(),
                });
            }
            for (k, &p) in powers.iter().enumerate() {
                b[self.layer_nodes[l][k]] += p;
            }
        }
        for (bi, &g) in b.iter_mut().zip(&self.g_ambient) {
            *bi += g * self.ambient;
        }

        // Assemble adjacency for the matvec.
        let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, c, g) in &self.edges {
            neighbors[a].push((c, g));
            neighbors[c].push((a, g));
        }
        let diag: Vec<f64> = (0..n)
            .map(|i| neighbors[i].iter().map(|&(_, g)| g).sum::<f64>() + self.g_ambient[i])
            .collect();
        if diag.iter().any(|&d| d <= 0.0) {
            return Err(ThermalError::BadStack {
                reason: "block model has an isolated node".into(),
            });
        }
        let matvec = |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                let mut acc = diag[i] * x[i];
                for &(j, g) in &neighbors[i] {
                    acc -= g * x[j];
                }
                y[i] = acc;
            }
        };
        // The block model is a few dozen nodes; the closure-based
        // reference CG is plenty and avoids a CSR lowering here.
        let mut x = vec![self.ambient; n];
        solve_cg_reference(matvec, &diag, &b, &mut x, &self.options)?;

        let layers = self
            .layer_nodes
            .iter()
            .map(|ids| ids.iter().map(|&i| x[i]).collect())
            .collect();
        let (t, s, k) = self.package_nodes;
        Ok(BlockTemperatures {
            layers,
            package: (x[t], x[s], x[k]),
            ambient: self.ambient,
        })
    }
}

/// Effective vertical conductivity of a floorplan block: the block's own
/// material (override or base) blended with any patches overlapping it.
fn effective_lambda(layer: &Layer, block_index: usize, rect: &Rect) -> f64 {
    let base = layer
        .block_material(block_index)
        .unwrap_or(layer.base_material())
        .conductivity();
    fold_patches(layer, rect, base.get())
}

/// Effective conductivity of a floorplan-less layer over `region`.
fn effective_lambda_unfloorplanned(layer: &Layer, region: &Rect) -> f64 {
    fold_patches(layer, region, layer.base_material().conductivity().get())
}

fn fold_patches(layer: &Layer, rect: &Rect, base: f64) -> f64 {
    let area = rect.area();
    if area <= 0.0 {
        return base;
    }
    let mut lambda = base;
    for patch in layer.patches() {
        let f = patch.rect().intersection_area(rect) / area;
        if f > 0.0 {
            lambda = lambda * (1.0 - f) + f * patch.material().conductivity().get();
        }
    }
    lambda
}

/// Lateral conductance between two blocks of one layer if they share an
/// edge: `G = lambda_series * t * shared_len / centroid_distance`.
fn lateral_g(a: &BlockNode, b: &BlockNode) -> Option<f64> {
    const EPS: f64 = 1e-9;
    let shared = if (a.rect.x_max() - b.rect.x()).abs() < EPS
        || (b.rect.x_max() - a.rect.x()).abs() < EPS
    {
        (a.rect.y_max().min(b.rect.y_max()) - a.rect.y().max(b.rect.y())).max(0.0)
    } else if (a.rect.y_max() - b.rect.y()).abs() < EPS || (b.rect.y_max() - a.rect.y()).abs() < EPS
    {
        (a.rect.x_max().min(b.rect.x_max()) - a.rect.x().max(b.rect.x())).max(0.0)
    } else {
        0.0
    };
    if shared <= EPS {
        return None;
    }
    let d = a.rect.center_distance(&b.rect).max(EPS);
    // Series half-distances through each block's own conductivity.
    let (da, db) = (d / 2.0, d / 2.0);
    let g = a.thickness * shared / (da / a.lambda + db / b.lambda);
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::grid::GridSpec;
    use crate::material::{D2D_AVERAGE, SILICON};
    use crate::package::Package;
    use crate::power::PowerMap;
    use crate::stack::Stack;

    const DIE: f64 = 8e-3;

    fn simple_stack() -> Stack {
        let mut fp = Floorplan::new(DIE, DIE);
        fp.add_block("left", Rect::new(0.0, 0.0, DIE / 2.0, DIE))
            .unwrap();
        fp.add_block("right", Rect::new(DIE / 2.0, 0.0, DIE / 2.0, DIE))
            .unwrap();
        Stack::builder(DIE, DIE)
            .package(Package::default_for_die(DIE, DIE))
            .layer(Layer::uniform("si-top", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
            .layer(Layer::uniform("proc", 100e-6, SILICON.clone()).with_floorplan(fp))
            .build()
            .unwrap()
    }

    #[test]
    fn builds_expected_node_count() {
        let m = BlockThermalModel::build(&simple_stack()).unwrap();
        // 1 + 1 + 2 block nodes + 3 package nodes.
        assert_eq!(m.node_count(), 7);
        assert_eq!(m.block_index(2, "left"), Some(0));
        assert_eq!(m.block_index(2, "right"), Some(1));
        assert_eq!(m.block_index(0, "nope"), None);
    }

    #[test]
    fn power_raises_its_own_block_most() {
        let m = BlockThermalModel::build(&simple_stack()).unwrap();
        let t = m.steady_state(&[vec![], vec![], vec![12.0, 0.0]]).unwrap();
        let (hot, _) = t.hotspot_of_layer(2);
        assert_eq!(hot, 0); // "left"
        assert!(t.layers[2][0] > t.layers[2][1] + 0.5);
        // Package node ordering: sink coolest, tim warmest.
        let (tim, sp, sink) = t.package;
        assert!(tim >= sp && sp >= sink && sink > t.ambient);
    }

    #[test]
    fn agrees_with_grid_mode_on_smooth_problems() {
        // Uniform power over the bottom layer: block and grid mode should
        // land within a few degrees of each other.
        let stack = simple_stack();
        let block = BlockThermalModel::build(&stack).unwrap();
        let bt = block
            .steady_state(&[vec![], vec![], vec![8.0, 8.0]])
            .unwrap();
        let grid = stack.discretize(GridSpec::new(16, 16)).unwrap();
        let mut p = PowerMap::zeros(&grid);
        p.add_uniform_layer_power(2, crate::units::Watts::new(16.0));
        let gt = grid.steady_state(&p).unwrap();
        let block_mean = bt.mean_of_layer(2);
        let grid_mean = gt.mean_of_layer(2).get();
        assert!(
            (block_mean - grid_mean).abs() < 5.0,
            "block {block_mean} vs grid {grid_mean}"
        );
    }

    #[test]
    fn pillar_patches_fold_into_block_lambda() {
        use crate::layer::MaterialPatch;
        use crate::material::shorted_pillar_d2d;
        let mut d2d = Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone());
        d2d.add_patch(MaterialPatch::new(
            "pillar",
            Rect::new(3e-3, 3e-3, 2e-3, 2e-3),
            shorted_pillar_d2d(20e-6),
        ))
        .unwrap();
        let with_pillar = Stack::builder(DIE, DIE)
            .package(Package::default_for_die(DIE, DIE))
            .layer(Layer::uniform("top", 100e-6, SILICON.clone()))
            .layer(d2d)
            .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
            .build()
            .unwrap();
        let plain = Stack::builder(DIE, DIE)
            .package(Package::default_for_die(DIE, DIE))
            .layer(Layer::uniform("top", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
            .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
            .build()
            .unwrap();
        let hot = |s: &Stack| {
            BlockThermalModel::build(s)
                .unwrap()
                .steady_state(&[vec![], vec![], vec![15.0]])
                .unwrap()
                .layers[2][0]
        };
        assert!(hot(&with_pillar) < hot(&plain) - 1.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let m = BlockThermalModel::build(&simple_stack()).unwrap();
        assert!(m.steady_state(&[vec![]]).is_err());
        assert!(m.steady_state(&[vec![], vec![], vec![1.0]]).is_err());
    }

    #[test]
    fn block_mode_runs_the_full_paper_floorplans() {
        // The processor floorplan's 83 blocks, through block mode.
        use crate::layer::Layer as L;
        let mut fp = Floorplan::new(DIE, DIE);
        // A 4x4 tiling stands in for an arbitrary many-block layer here
        // (the real paper floorplans live in xylem-stack, a downstream
        // crate).
        for i in 0..4 {
            for j in 0..4 {
                fp.add_block(
                    format!("b{i}{j}"),
                    Rect::new(
                        i as f64 * DIE / 4.0,
                        j as f64 * DIE / 4.0,
                        DIE / 4.0,
                        DIE / 4.0,
                    ),
                )
                .unwrap();
            }
        }
        let stack = Stack::builder(DIE, DIE)
            .layer(L::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp))
            .build()
            .unwrap();
        let m = BlockThermalModel::build(&stack).unwrap();
        let powers = vec![vec![1.0; 16]];
        let t = m.steady_state(&powers).unwrap();
        // 4-fold symmetry of the block temperatures.
        let v = &t.layers[0];
        assert!((v[0] - v[15]).abs() < 1e-6);
        assert!((v[5] - v[10]).abs() < 1e-6);
    }
}
