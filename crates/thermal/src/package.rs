//! The thermal package: TIM, integrated heat spreader, heat sink, ambient.
//!
//! Mirrors HotSpot's package model. The die-sized portion of the spreader
//! (IHS) and sink are discretized on the same grid as the stack; the parts
//! that extend beyond the die are modeled as four trapezoidal peripheral
//! nodes per ring (one ring for the IHS, two for the sink), exactly like
//! HotSpot's `spreader`/`sink` extra nodes. Every sink node convects to the
//! ambient through a resistance proportional to its share of the sink area.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::material::{Material, COPPER, TIM};
use crate::units::Celsius;

/// Default ambient (local air) temperature inside the case, deg C.
pub const DEFAULT_AMBIENT_C: f64 = 43.0;

/// Package description (TIM + IHS + sink + convection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Package {
    /// TIM thickness, m (paper Table 1: 50 um).
    tim_thickness: f64,
    /// TIM material (5 W/m-K).
    tim_material: Material,
    /// IHS side length, m (paper Table 1: 3 cm square).
    spreader_side: f64,
    /// IHS thickness, m (0.1 cm).
    spreader_thickness: f64,
    /// IHS material (Cu).
    spreader_material: Material,
    /// Heat-sink base side length, m (6 cm square).
    sink_side: f64,
    /// Heat-sink base thickness, m (0.7 cm).
    sink_thickness: f64,
    /// Sink material (Cu).
    sink_material: Material,
    /// Total sink-to-ambient convection resistance, K/W. An active
    /// (fan-cooled) sink is ~0.1-0.3 K/W; passive sinks are several K/W.
    convection_resistance: f64,
    /// Ambient temperature, deg C.
    ambient: f64,
    /// Optional secondary heat path from the bottom of the stack through
    /// C4 pads / package substrate / board, as a single lumped resistance
    /// (K/W) to ambient. `None` = adiabatic bottom.
    board_resistance: Option<f64>,
}

impl Package {
    /// The package used throughout the paper's evaluation (Table 1): 50 um
    /// TIM at 5 W/m-K, 3x3x0.1 cm Cu IHS, 6x6x0.7 cm Cu active heat sink.
    ///
    /// The convection resistance (0.45 K/W) and ambient (45 deg C) are the
    /// calibration knobs described in DESIGN.md: they place the `base`
    /// configuration at the paper's operating point. A weak secondary board
    /// path (20 K/W) is included.
    ///
    /// `die_width`/`die_height` are used only for validation (the IHS must
    /// be at least as large as the die).
    ///
    /// # Panics
    ///
    /// Panics if the die is larger than the default 3 cm IHS.
    pub fn default_for_die(die_width: f64, die_height: f64) -> Self {
        let p = Package {
            tim_thickness: 50e-6,
            tim_material: TIM.clone(),
            spreader_side: 3e-2,
            spreader_thickness: 1e-3,
            spreader_material: COPPER.clone(),
            sink_side: 6e-2,
            sink_thickness: 7e-3,
            sink_material: COPPER.clone(),
            convection_resistance: 0.26,
            ambient: DEFAULT_AMBIENT_C,
            board_resistance: Some(20.0),
        };
        p.validate_die(die_width, die_height)
            .expect("die larger than default package spreader");
        p
    }

    /// A package with **no lateral spreading**: spreader and sink exactly
    /// the die size, no board path. Heat flow is then purely vertical,
    /// which is what the closed-form formulas in [`crate::analytic`]
    /// assume. Used for solver validation.
    pub fn one_dimensional(die_width: f64, die_height: f64) -> Self {
        let side = die_width.max(die_height);
        Package {
            tim_thickness: 50e-6,
            tim_material: TIM.clone(),
            spreader_side: side,
            spreader_thickness: 1e-3,
            spreader_material: COPPER.clone(),
            sink_side: side,
            sink_thickness: 7e-3,
            sink_material: COPPER.clone(),
            convection_resistance: 0.45,
            ambient: DEFAULT_AMBIENT_C,
            board_resistance: None,
        }
    }

    /// Checks the die fits under the spreader and the spreader under the
    /// sink.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadStack`] on geometric impossibility.
    pub fn validate_die(&self, die_width: f64, die_height: f64) -> Result<(), ThermalError> {
        if die_width > self.spreader_side || die_height > self.spreader_side {
            return Err(ThermalError::BadStack {
                reason: format!(
                    "die {:.1}x{:.1} mm larger than spreader {:.1} mm",
                    die_width * 1e3,
                    die_height * 1e3,
                    self.spreader_side * 1e3
                ),
            });
        }
        if self.spreader_side > self.sink_side {
            return Err(ThermalError::BadStack {
                reason: format!(
                    "spreader {:.1} mm larger than sink {:.1} mm",
                    self.spreader_side * 1e3,
                    self.sink_side * 1e3
                ),
            });
        }
        Ok(())
    }

    /// Sets the total convection (sink-to-air) resistance, K/W.
    pub fn with_convection_resistance(mut self, r: f64) -> Self {
        assert!(
            r.is_finite() && r > 0.0,
            "convection resistance must be > 0"
        );
        self.convection_resistance = r;
        self
    }

    /// Sets the ambient temperature.
    pub fn with_ambient(mut self, ambient: Celsius) -> Self {
        self.ambient = ambient.get();
        self
    }

    /// Sets (or disables, with `None`) the secondary board path resistance.
    pub fn with_board_resistance(mut self, r: Option<f64>) -> Self {
        if let Some(r) = r {
            assert!(r.is_finite() && r > 0.0, "board resistance must be > 0");
        }
        self.board_resistance = r;
        self
    }

    /// Sets the TIM thickness (m) and material.
    pub fn with_tim(mut self, thickness: f64, material: Material) -> Self {
        assert!(thickness.is_finite() && thickness > 0.0);
        self.tim_thickness = thickness;
        self.tim_material = material;
        self
    }

    /// Sets the IHS side length (m), thickness (m), and material.
    ///
    /// Geometric ordering against the die and sink is checked by
    /// [`Package::validate_die`] when the stack is built.
    pub fn with_spreader(mut self, side: f64, thickness: f64, material: Material) -> Self {
        assert!(side.is_finite() && side > 0.0, "spreader side must be > 0");
        assert!(
            thickness.is_finite() && thickness > 0.0,
            "spreader thickness must be > 0"
        );
        self.spreader_side = side;
        self.spreader_thickness = thickness;
        self.spreader_material = material;
        self
    }

    /// Sets the heat-sink base side length (m), thickness (m), and material.
    pub fn with_sink(mut self, side: f64, thickness: f64, material: Material) -> Self {
        assert!(side.is_finite() && side > 0.0, "sink side must be > 0");
        assert!(
            thickness.is_finite() && thickness > 0.0,
            "sink thickness must be > 0"
        );
        self.sink_side = side;
        self.sink_thickness = thickness;
        self.sink_material = material;
        self
    }

    /// TIM thickness, m.
    pub fn tim_thickness(&self) -> f64 {
        self.tim_thickness
    }

    /// TIM material.
    pub fn tim_material(&self) -> &Material {
        &self.tim_material
    }

    /// IHS side, m.
    pub fn spreader_side(&self) -> f64 {
        self.spreader_side
    }

    /// IHS thickness, m.
    pub fn spreader_thickness(&self) -> f64 {
        self.spreader_thickness
    }

    /// IHS material.
    pub fn spreader_material(&self) -> &Material {
        &self.spreader_material
    }

    /// Sink side, m.
    pub fn sink_side(&self) -> f64 {
        self.sink_side
    }

    /// Sink thickness, m.
    pub fn sink_thickness(&self) -> f64 {
        self.sink_thickness
    }

    /// Sink material.
    pub fn sink_material(&self) -> &Material {
        &self.sink_material
    }

    /// Total sink-to-ambient convection resistance, K/W.
    pub fn convection_resistance(&self) -> f64 {
        self.convection_resistance
    }

    /// Ambient temperature, deg C.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Secondary board-path resistance, K/W, if enabled.
    pub fn board_resistance(&self) -> Option<f64> {
        self.board_resistance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_package_paper_dimensions() {
        let p = Package::default_for_die(8e-3, 8e-3);
        assert_eq!(p.tim_thickness(), 50e-6);
        assert_eq!(p.spreader_side(), 3e-2);
        assert_eq!(p.spreader_thickness(), 1e-3);
        assert_eq!(p.sink_side(), 6e-2);
        assert_eq!(p.sink_thickness(), 7e-3);
        assert_eq!(p.tim_material().conductivity(), 5.0);
        assert_eq!(p.sink_material().conductivity(), 400.0);
    }

    #[test]
    fn validate_rejects_oversized_die() {
        let p = Package::default_for_die(8e-3, 8e-3);
        assert!(p.validate_die(4e-2, 4e-2).is_err());
        assert!(p.validate_die(2.9e-2, 2.9e-2).is_ok());
    }

    #[test]
    fn builders_update_fields() {
        let p = Package::default_for_die(8e-3, 8e-3)
            .with_convection_resistance(0.2)
            .with_ambient(Celsius::new(40.0))
            .with_board_resistance(None);
        assert_eq!(p.convection_resistance(), 0.2);
        assert_eq!(p.ambient(), 40.0);
        assert!(p.board_resistance().is_none());
    }

    #[test]
    fn spreader_and_sink_setters_update_geometry() {
        let p = Package::default_for_die(8e-3, 8e-3)
            .with_spreader(4e-2, 2e-3, COPPER.clone())
            .with_sink(8e-2, 9e-3, COPPER.clone());
        assert_eq!(p.spreader_side(), 4e-2);
        assert_eq!(p.spreader_thickness(), 2e-3);
        assert_eq!(p.sink_side(), 8e-2);
        assert_eq!(p.sink_thickness(), 9e-3);
        assert!(p.validate_die(8e-3, 8e-3).is_ok());
    }

    #[test]
    #[should_panic(expected = "spreader side")]
    fn zero_spreader_side_panics() {
        let _ = Package::default_for_die(8e-3, 8e-3).with_spreader(0.0, 1e-3, COPPER.clone());
    }

    #[test]
    #[should_panic]
    fn negative_convection_panics() {
        let _ = Package::default_for_die(8e-3, 8e-3).with_convection_resistance(-1.0);
    }
}
