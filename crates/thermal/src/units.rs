//! Physical-quantity newtypes enforced across the workspace's public APIs.
//!
//! Every quantity that crosses a public API boundary of `xylem-thermal`,
//! `xylem-power`, or `xylem-core` carries its unit in the type:
//!
//! | type | unit | invariant |
//! |------|------|-----------|
//! | [`Celsius`] | deg C | finite, >= absolute zero |
//! | [`Kelvin`] | K | finite, >= 0 |
//! | [`Watts`] | W | finite (negative = heat extraction) |
//! | [`WattsPerMeterKelvin`] | W/(m*K) | finite, > 0 |
//! | [`VolumetricHeatCapacity`] | J/(m^3*K) | finite, > 0 |
//!
//! Two constructors exist per type: `new` is `const` and asserts the
//! invariant (usable for compile-time constants; panics with the quantity
//! name on bad runtime input), `try_new` rejects `NaN`/out-of-range values
//! with a [`UnitError`]. The raw `f64` comes back out through `get`.
//!
//! `xylem-lint` (rule `raw-f64-param`) rejects bare `f64` scalars in
//! public signatures of the three crates where one of these types is
//! expected; bulk `&[f64]` fields/slices deliberately stay raw for
//! numeric-kernel interop.

/// Offset between the Celsius and Kelvin scales: 0 deg C in K.
pub const KELVIN_OFFSET: f64 = 273.15;

/// Absolute zero on the Celsius scale, deg C.
pub const ABSOLUTE_ZERO_C: f64 = -KELVIN_OFFSET;

/// A quantity failed its unit invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitError {
    /// The quantity (type) being constructed.
    pub quantity: &'static str,
    /// The rejected value.
    pub value: f64,
}

impl std::fmt::Display for UnitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {}", self.quantity, self.value)
    }
}

impl std::error::Error for UnitError {}

impl From<UnitError> for crate::error::ThermalError {
    fn from(e: UnitError) -> Self {
        crate::error::ThermalError::InvalidMaterial {
            what: e.quantity.into(),
            value: e.value,
        }
    }
}

macro_rules! unit_newtype {
    (
        $(#[$doc:meta])*
        $name:ident, $label:expr, $suffix:expr, |$v:ident| $valid:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
        #[repr(transparent)]
        pub struct $name(f64);

        // Serialized as the bare number (serde's newtype-struct behavior);
        // deserialization re-checks the invariant.
        impl serde::Serialize for $name {
            fn to_value(&self) -> serde::Value {
                self.0.to_value()
            }
        }

        impl serde::Deserialize for $name {
            fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
                let raw = f64::from_value(v)?;
                $name::try_new(raw).map_err(|e| serde::DeError::new(e.to_string()))
            }
        }

        impl $name {
            /// Constructs the quantity, asserting its invariant. `const`,
            /// so usable in statics; panics (with the quantity name) on
            /// invalid runtime input — use [`Self::try_new`] for untrusted
            /// values.
            #[must_use]
            pub const fn new($v: f64) -> Self {
                assert!($valid, concat!("invalid ", $label));
                $name($v)
            }

            /// Checked constructor: rejects `NaN` and out-of-range values.
            ///
            /// # Errors
            ///
            /// [`UnitError`] naming the quantity and offending value.
            pub fn try_new($v: f64) -> Result<Self, UnitError> {
                if $valid {
                    Ok($name($v))
                } else {
                    Err(UnitError {
                        quantity: $label,
                        value: $v,
                    })
                }
            }

            /// The raw value in the type's base unit.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl PartialEq<f64> for $name {
            fn eq(&self, other: &f64) -> bool {
                self.0 == *other
            }
        }

        impl PartialEq<$name> for f64 {
            fn eq(&self, other: &$name) -> bool {
                *self == other.0
            }
        }

        impl PartialOrd<f64> for $name {
            fn partial_cmp(&self, other: &f64) -> Option<std::cmp::Ordering> {
                self.0.partial_cmp(other)
            }
        }

        impl PartialOrd<$name> for f64 {
            fn partial_cmp(&self, other: &$name) -> Option<std::cmp::Ordering> {
                self.partial_cmp(&other.0)
            }
        }

        /// Difference of two like quantities, in the base unit.
        impl std::ops::Sub for $name {
            type Output = f64;
            fn sub(self, rhs: Self) -> f64 {
                self.0 - rhs.0
            }
        }
    };
}

unit_newtype!(
    /// A temperature on the Celsius scale (the solver's working scale).
    Celsius, "Celsius temperature", " degC",
    |v| v.is_finite() && v >= ABSOLUTE_ZERO_C
);

unit_newtype!(
    /// An absolute (thermodynamic) temperature.
    Kelvin, "Kelvin temperature", " K",
    |v| v.is_finite() && v >= 0.0
);

unit_newtype!(
    /// A power (heat flow). Negative values mean heat extraction.
    Watts, "power in watts", " W",
    |v| v.is_finite()
);

unit_newtype!(
    /// A thermal conductivity.
    WattsPerMeterKelvin, "thermal conductivity", " W/(m*K)",
    |v| v.is_finite() && v > 0.0
);

unit_newtype!(
    /// A volumetric heat capacity.
    VolumetricHeatCapacity, "volumetric heat capacity", " J/(m^3*K)",
    |v| v.is_finite() && v > 0.0
);

impl Celsius {
    /// This temperature on the Kelvin scale. Infallible: every valid
    /// `Celsius` is at or above absolute zero.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        // Clamp shields against -273.15 mapping to -0.0/-1e-14 in float.
        Kelvin::new((self.0 + KELVIN_OFFSET).max(0.0))
    }

    /// Shifts by a temperature difference in K (== a difference in deg C).
    #[must_use]
    pub fn offset(self, delta_k: f64) -> Self {
        Celsius::new(self.0 + delta_k)
    }

    /// The larger of two temperatures.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The smaller of two temperatures.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Kelvin {
    /// This temperature on the Celsius scale.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 - KELVIN_OFFSET)
    }
}

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts::new(0.0);

    /// Scales the power by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if the result is not finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Watts::new(self.0 * factor)
    }
}

impl std::ops::Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Self) -> Watts {
        Watts::new(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts::new(iter.map(Watts::get).sum())
    }
}

impl WattsPerMeterKelvin {
    /// Thermal resistance per unit area of a slab of this conductivity,
    /// `t / lambda`, in m^2*K/W.
    #[must_use]
    pub fn rth_per_area(self, thickness_m: f64) -> f64 {
        thickness_m / self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        for c in [-273.15, -40.0, 0.0, 25.0, 85.0, 100.0, 1234.5] {
            let t = Celsius::new(c);
            let back = t.to_kelvin().to_celsius();
            assert!((back - t).abs() < 1e-9, "{c}: {back}");
        }
        assert_eq!(Celsius::new(0.0).to_kelvin(), KELVIN_OFFSET);
        assert_eq!(Kelvin::new(0.0).to_celsius(), ABSOLUTE_ZERO_C);
    }

    #[test]
    fn nan_and_out_of_range_rejected() {
        assert!(Celsius::try_new(f64::NAN).is_err());
        assert!(Celsius::try_new(f64::INFINITY).is_err());
        assert!(Celsius::try_new(-274.0).is_err());
        assert!(Kelvin::try_new(-1e-9).is_err());
        assert!(Watts::try_new(f64::NAN).is_err());
        assert!(Watts::try_new(-3.0).is_ok(), "extraction is signed");
        assert!(WattsPerMeterKelvin::try_new(0.0).is_err());
        assert!(WattsPerMeterKelvin::try_new(-1.0).is_err());
        assert!(VolumetricHeatCapacity::try_new(f64::NAN).is_err());
        assert!(VolumetricHeatCapacity::try_new(0.0).is_err());
        assert!(VolumetricHeatCapacity::try_new(1.75e6).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid Celsius temperature")]
    fn const_constructor_asserts() {
        let _ = Celsius::new(f64::NAN);
    }

    #[test]
    fn const_in_static_position() {
        const LIMIT: Celsius = Celsius::new(100.0);
        static SI_K: WattsPerMeterKelvin = WattsPerMeterKelvin::new(120.0);
        assert_eq!(LIMIT.get(), 100.0);
        assert_eq!(SI_K.get(), 120.0);
    }

    #[test]
    fn comparisons_with_raw_floats() {
        let t = Celsius::new(95.0);
        assert!(t > 90.0);
        assert!(t < 100.0);
        assert!(100.0 > t);
        assert!(t == 95.0);
        assert!((t - Celsius::new(90.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn watts_arithmetic() {
        let total: Watts = [1.5, 2.5, 4.0].into_iter().map(Watts::new).sum();
        assert_eq!(total, 8.0);
        assert_eq!((Watts::new(2.0) + Watts::new(3.0)).get(), 5.0);
        assert_eq!(Watts::new(2.0).scaled(0.5), 1.0);
    }

    #[test]
    fn unit_error_display_names_quantity() {
        let e = WattsPerMeterKelvin::try_new(-5.0).unwrap_err();
        assert_eq!(e.to_string(), "invalid thermal conductivity: -5");
        let te: crate::error::ThermalError = e.into();
        assert!(te.to_string().contains("thermal conductivity"));
    }

    #[test]
    fn serde_round_trip() {
        let w = Watts::new(12.5);
        let s = serde_json::to_string(&w).unwrap();
        let back: Watts = serde_json::from_str(&s).unwrap();
        assert_eq!(w, back);
    }
}
