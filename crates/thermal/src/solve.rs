//! Linear solvers for the RC network.
//!
//! The conductance matrix is symmetric positive definite (pure conduction
//! plus grounding convection terms on the diagonal), so the steady-state
//! and backward-Euler systems are solved with preconditioned conjugate
//! gradient over the flat [`CsrMatrix`] the model lowers its node graph
//! into.
//!
//! # Kernel design
//!
//! All vector kernels work in fixed chunks of [`ROW_CHUNK`] elements:
//! each chunk accumulates serially, per-chunk partials land in a
//! workspace buffer, and a fixed pairwise tree folds the partials.
//! Because the chunk boundaries — not the thread count — define every
//! summation order, the parallel (rayon row-chunked) and serial paths
//! produce **bit-identical** residual histories; runs are reproducible on
//! any machine. Dot products fuse into the passes that produce their
//! operands (`x += alpha p` / `r -= alpha ap` yields `||r||^2` as a
//! by-product), so a CG iteration makes no separate pass over `r` just to
//! measure it.
//!
//! # Convergence criterion
//!
//! Iteration stops when `||r_k|| <= tolerance * ||b||`, where `r_k` is
//! the **recurrence residual** (`r_{k+1} = r_k - alpha_k A p_k`), whose
//! squared norm falls out of the fused update pass. The recurrence
//! residual can drift from the true residual `b - A x_k` by rounding at
//! the 1e-15 relative scale — orders of magnitude below the default 1e-9
//! tolerance — and [`debug_check_solution`] cross-checks the reported
//! residual in debug builds.
//!
//! # Preconditioners
//!
//! [`PreconditionerKind`] selects between Jacobi (diagonal scaling; the
//! historical default), SSOR (symmetric Gauss-Seidel sweeps, no setup
//! cost), IC(0) (incomplete Cholesky with zero fill), an
//! aggregation-based algebraic multigrid V-cycle (see [`crate::amg`]),
//! and a geometric multigrid V-cycle built from the structured grid
//! description (see [`crate::gmg`]; only buildable when the geometry is
//! known, so [`Preconditioner::build_gmg`] is its entry point). On the
//! RC network's strongly anisotropic conductance structure Jacobi needs
//! ~400 iterations at 64x64, SSOR/IC(0) cut that to ~180 but pay ~3
//! matvec-equivalents per apply in serial triangular sweeps, and the
//! multigrids land at a few dozen iterations for a similar per-apply
//! cost — the only options that beat Jacobi in wall time on a single
//! core. The triangular sweeps of SSOR/IC(0) are serial by nature; the
//! matvec and vector kernels around them still parallelize.
//!
//! # Operators
//!
//! The CG loop itself only needs a matvec, so it runs on an
//! [`Operator`]: the CSR matrix plus an optional matrix-free
//! [`StencilOperator`](crate::stencil) fast path whose sweeps are
//! bit-identical to the CSR kernel. [`solve_cg`] /
//! [`solve_cg_resilient`] remain the CSR-only entry points;
//! `*_with` variants accept an [`Operator`].

use serde::{Deserialize, Serialize};

use crate::csr::{CsrMatrix, PAR_MIN_ROWS, ROW_CHUNK};
use crate::error::ThermalError;
use crate::reduce::{dot_chunked, fused_p_update, fused_xr_update, reduce_pairwise};
use crate::stencil::StencilOperator;

/// Preconditioner selection for [`SolverOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreconditionerKind {
    /// Diagonal (Jacobi) scaling: cheapest per iteration, most
    /// iterations.
    Jacobi,
    /// Symmetric successive over-relaxation at `omega = 1` (symmetric
    /// Gauss-Seidel): no setup cost, roughly one extra matvec-equivalent
    /// per iteration.
    Ssor,
    /// Incomplete Cholesky with zero fill-in. One-time factorization at
    /// model build; good iteration counts on the RC network's strongly
    /// anisotropic (vertical >> lateral) conductance structure, but the
    /// serial triangular sweeps make each apply cost ~3 matvecs.
    Ic0,
    /// Aggregation-based algebraic multigrid V-cycle (the default).
    /// One-time hierarchy setup at model build; an order of magnitude
    /// fewer CG iterations than Jacobi at a few matvec-equivalents per
    /// apply. See [`crate::amg`].
    Amg,
    /// Geometric multigrid V-cycle over the structured stack grid:
    /// in-plane semicoarsening with z-line block-Jacobi smoothing. Needs
    /// the grid geometry, so it is built via
    /// [`Preconditioner::build_gmg`]; [`Preconditioner::build`] (which
    /// only sees a bare matrix) degrades it to [`PreconditionerKind::Amg`].
    /// See [`crate::gmg`].
    Gmg,
}

/// Options controlling the iterative solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Relative residual tolerance: converged when
    /// `||b - A x|| <= tolerance * ||b||` (recurrence residual; see the
    /// module docs).
    pub tolerance: f64,
    /// Iteration cap before [`ThermalError::NoConvergence`].
    pub max_iterations: usize,
    /// Which preconditioner to build and apply.
    pub preconditioner: PreconditionerKind,
    /// Whether [`solve_cg_resilient`] may escalate down the fallback
    /// ladder (GMG -> AMG -> IC0 -> SSOR -> Jacobi) when the configured
    /// solve fails, instead of surfacing
    /// [`ThermalError::NoConvergence`].
    pub fallback: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-9,
            max_iterations: 20_000,
            preconditioner: PreconditionerKind::Amg,
            fallback: true,
        }
    }
}

/// Fallback escalation order: each rung is cheaper to set up and more
/// numerically conservative than the one before it. A solve configured
/// at rung `k` escalates through rungs `k+1..` — so a failed GMG solve
/// retries on AMG first (the algebraic hierarchy needs no geometry and
/// tolerates matrices GMG's structural assumptions misread), and every
/// configured kind ends at plain Jacobi.
pub const FALLBACK_LADDER: [PreconditionerKind; 5] = [
    PreconditionerKind::Gmg,
    PreconditionerKind::Amg,
    PreconditionerKind::Ic0,
    PreconditionerKind::Ssor,
    PreconditionerKind::Jacobi,
];

/// Iteration budget every fallback rung gets at minimum, regardless of
/// how tight the configured cap was: a rung exists to rescue the solve,
/// so it must not inherit a cap that already proved too small.
const FALLBACK_MIN_ITERATIONS: usize = 20_000;

std::thread_local! {
    /// Wall-clock deadline for solves on this thread; installed by
    /// [`DeadlineGuard`], checked every [`DEADLINE_CHECK_STRIDE`]
    /// iterations inside the CG loop. `None` (the default) costs one
    /// thread-local load per check and never reads the clock, so runs
    /// without a deadline stay bit-for-bit undisturbed.
    static SOLVE_DEADLINE: std::cell::Cell<Option<std::time::Instant>> =
        const { std::cell::Cell::new(None) };
}

/// How many CG iterations pass between deadline checks. A power of two
/// so the modulo folds to a mask; at ~1 ms/iteration on the largest
/// grids the deadline overshoot is bounded by a few tens of ms.
const DEADLINE_CHECK_STRIDE: usize = 32;

/// RAII guard installing a wall-clock deadline for every solve on the
/// current thread. While the guard is alive, [`solve_cg`] and the
/// resilient variants abort with [`ThermalError::DeadlineExceeded`] as
/// soon as a periodic in-loop check observes the deadline in the past —
/// a stuck or pathologically slow solve returns to the caller instead of
/// spinning to its iteration cap. Dropping the guard restores whatever
/// deadline (usually none) was installed before, so guards nest.
#[derive(Debug)]
pub struct DeadlineGuard {
    prev: Option<std::time::Instant>,
}

impl DeadlineGuard {
    /// Installs `deadline` as the solve deadline for this thread until
    /// the guard is dropped.
    #[must_use = "the deadline is uninstalled when the guard drops"]
    pub fn install(deadline: std::time::Instant) -> Self {
        let prev = SOLVE_DEADLINE.with(|d| d.replace(Some(deadline)));
        DeadlineGuard { prev }
    }

    /// Whether a deadline is currently installed on this thread.
    pub fn active() -> bool {
        SOLVE_DEADLINE.with(|d| d.get().is_some())
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        SOLVE_DEADLINE.with(|d| d.set(prev));
    }
}

/// Whether the thread's installed deadline (if any) has expired. Reads
/// the clock only when a deadline is installed.
#[inline]
fn deadline_expired() -> bool {
    SOLVE_DEADLINE.with(|d| {
        d.get()
            .is_some_and(|deadline| std::time::Instant::now() >= deadline)
    })
}

/// Cap on detailed [`RecoveryEvent`]s kept per report; totals keep
/// counting past it (long degraded transients would otherwise grow the
/// report without bound).
const MAX_RECORDED_EVENTS: usize = 64;

/// The relaxed first-pass tolerance a fallback rung converges to before
/// re-tightening to the requested tolerance: three decades looser,
/// never looser than 1e-4, never looser than the request itself allows.
fn relaxed_tolerance(tolerance: f64) -> f64 {
    (tolerance * 1e3).min(1e-4).max(tolerance)
}

/// One fallback-ladder recovery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Preconditioner rung the retry ran on.
    pub rung: PreconditionerKind,
    /// Tolerance of the relaxed first pass.
    pub relaxed_tolerance: f64,
    /// CG iterations this rung spent (relaxed + retightened passes).
    pub iterations: usize,
    /// Relative residual at the end of the rung.
    pub residual: f64,
    /// Whether the rung brought the solve back to the requested
    /// tolerance.
    pub recovered: bool,
}

/// Record of every fallback recovery a solve (or a sequence of solves)
/// went through. An empty report means every solve converged on the
/// configured path; a non-empty one means the caller received
/// degraded-mode solutions that still meet the requested tolerance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Detailed per-rung events, capped at 64 entries; `attempts` /
    /// `recoveries` keep counting past the cap.
    pub events: Vec<RecoveryEvent>,
    /// Total rung attempts, recorded or not.
    pub attempts: usize,
    /// Total rungs that recovered the solve.
    pub recoveries: usize,
}

impl RecoveryReport {
    /// True when no fallback was ever needed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attempts == 0
    }

    /// Folds `other` into `self` (respecting the event cap).
    pub fn merge(&mut self, other: &RecoveryReport) {
        for ev in &other.events {
            if self.events.len() < MAX_RECORDED_EVENTS {
                self.events.push(*ev);
            }
        }
        self.attempts += other.attempts;
        self.recoveries += other.recoveries;
    }

    fn record(&mut self, ev: RecoveryEvent) {
        self.attempts += 1;
        if ev.recovered {
            self.recoveries += 1;
        }
        if self.events.len() < MAX_RECORDED_EVENTS {
            self.events.push(ev);
        }
    }
}

/// Statistics from a linear solve (or a sequence of transient solves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Conjugate-gradient iterations performed (summed over transient
    /// steps).
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Reusable solver buffers. Owned by the caller so repeated solves
/// (steady-state sweeps, transient stepping) allocate nothing per solve:
/// buffers grow to the model's node count on first use and are reused
/// verbatim afterwards.
///
/// The `rhs`/`rhs0` staging buffers are for *callers* assembling
/// right-hand sides ([`solve_cg`] itself never touches them); take them
/// with `std::mem::take` for the duration of a solve and put them back.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    partials: Vec<f64>,
    /// Right-hand-side staging buffer (caller-owned; untouched by the
    /// solver).
    pub rhs: Vec<f64>,
    /// Second staging buffer for transient stepping (the constant part
    /// of the backward-Euler right-hand side).
    pub rhs0: Vec<f64>,
    /// Full-step trial state for adaptive step-doubling
    /// (caller-owned; untouched by the solver).
    pub x_full: Vec<f64>,
    /// Two-half-step trial state for adaptive step-doubling
    /// (caller-owned; untouched by the solver).
    pub x_half: Vec<f64>,
    /// Entry-iterate backup for [`solve_cg_resilient`] cold restarts.
    x0: Vec<f64>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers are sized on first solve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn resize(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
        self.partials.resize(n.div_ceil(ROW_CHUNK), 0.0);
    }
}

/// A built preconditioner for one matrix. Rebuilt whenever the matrix
/// changes (e.g. the backward-Euler diagonal patch for a new `dt`).
#[derive(Debug, Clone)]
pub enum Preconditioner {
    /// Reciprocal diagonal.
    Jacobi {
        /// `1 / a_ii` per row.
        inv_diag: Vec<f64>,
    },
    /// Symmetric Gauss-Seidel sweeps read the matrix itself; only the
    /// diagonal is cached.
    Ssor {
        /// `a_ii` per row.
        diag: Vec<f64>,
    },
    /// Incomplete Cholesky factor `L` (lower triangular, diagonal last
    /// per row) and its transpose (diagonal first per row), both in flat
    /// CSR arrays.
    Ic0(Box<Ic0Factor>),
    /// Aggregation AMG hierarchy; one apply is a symmetric V(1,1) cycle.
    Amg(Box<crate::amg::AmgHierarchy>),
    /// Geometric multigrid hierarchy over the structured stack grid;
    /// one apply is a symmetric V(1,1) cycle with z-line smoothing.
    Gmg(Box<crate::gmg::GmgHierarchy>),
}

/// The IC(0) factor storage; split out to keep [`Preconditioner`] small.
#[derive(Debug, Clone)]
pub struct Ic0Factor {
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// `1 / l_ii` per row: the sweeps multiply instead of divide.
    inv_diag: Vec<f64>,
    t_row_ptr: Vec<u32>,
    t_col_idx: Vec<u32>,
    t_values: Vec<f64>,
}

impl PreconditionerKind {
    /// Stable lowercase label used in metrics/event output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PreconditionerKind::Jacobi => "jacobi",
            PreconditionerKind::Ssor => "ssor",
            PreconditionerKind::Ic0 => "ic0",
            PreconditionerKind::Amg => "amg",
            PreconditionerKind::Gmg => "gmg",
        }
    }
}

impl Preconditioner {
    /// Which [`PreconditionerKind`] this built preconditioner is.
    #[must_use]
    pub fn kind(&self) -> PreconditionerKind {
        match self {
            Preconditioner::Jacobi { .. } => PreconditionerKind::Jacobi,
            Preconditioner::Ssor { .. } => PreconditionerKind::Ssor,
            Preconditioner::Ic0(_) => PreconditionerKind::Ic0,
            Preconditioner::Amg(_) => PreconditionerKind::Amg,
            Preconditioner::Gmg(_) => PreconditionerKind::Gmg,
        }
    }

    /// Builds the selected preconditioner for `a`.
    ///
    /// [`PreconditionerKind::Gmg`] needs grid geometry a bare matrix
    /// does not carry, so this constructor degrades it to the algebraic
    /// hierarchy ([`PreconditionerKind::Amg`] — the next fallback rung);
    /// callers that know the geometry use
    /// [`Preconditioner::build_gmg`] instead.
    #[must_use]
    pub fn build(a: &CsrMatrix, kind: PreconditionerKind) -> Self {
        match kind {
            PreconditionerKind::Jacobi => Preconditioner::Jacobi {
                inv_diag: a.diagonal().iter().map(|d| 1.0 / d).collect(),
            },
            PreconditionerKind::Ssor => Preconditioner::Ssor { diag: a.diagonal() },
            PreconditionerKind::Ic0 => Preconditioner::Ic0(Box::new(Ic0Factor::factor(a))),
            PreconditionerKind::Amg | PreconditionerKind::Gmg => {
                Preconditioner::Amg(Box::new(crate::amg::AmgHierarchy::build(a)))
            }
        }
    }

    /// Builds the geometric multigrid preconditioner for a structured
    /// matrix with `nl` grid layers of `nx x ny` cells (see
    /// [`crate::gmg`]). Returns `None` when the matrix does not match
    /// that geometry.
    #[must_use]
    pub fn build_gmg(a: &CsrMatrix, nx: usize, ny: usize, nl: usize) -> Option<Self> {
        crate::gmg::GmgHierarchy::build(a, nx, ny, nl).map(|h| Preconditioner::Gmg(Box::new(h)))
    }

    /// `z = M^-1 r` as a standalone call — benchmark/diagnostic entry
    /// point for measuring preconditioner apply cost in isolation.
    #[doc(hidden)]
    pub fn apply_timed(&self, a: &CsrMatrix, r: &[f64], z: &mut [f64]) {
        let mut partials = vec![0.0; r.len().div_ceil(ROW_CHUNK)];
        let _ = self.apply(a, r, z, &mut partials);
    }

    /// `z = M^-1 r`. Returns `dot(r, z)` (deterministically chunked)
    /// when it falls out of the pass for free (Jacobi), else `None`.
    fn apply(&self, a: &CsrMatrix, r: &[f64], z: &mut [f64], partials: &mut [f64]) -> Option<f64> {
        match self {
            Preconditioner::Jacobi { inv_diag } => {
                // Fused: z = D^-1 r and rz = dot(r, z) in one pass.
                for (k, ((rc, zc), dc)) in r
                    .chunks(ROW_CHUNK)
                    .zip(z.chunks_mut(ROW_CHUNK))
                    .zip(inv_diag.chunks(ROW_CHUNK))
                    .enumerate()
                {
                    let mut acc = 0.0;
                    for ((ri, zi), di) in rc.iter().zip(zc.iter_mut()).zip(dc) {
                        *zi = ri * di;
                        acc += ri * *zi;
                    }
                    partials[k] = acc;
                }
                Some(reduce_pairwise(partials))
            }
            Preconditioner::Ssor { diag } => {
                // Symmetric Gauss-Seidel: M = (D+L) D^-1 (D+U).
                // Forward solve (D+L) y = r, writing y into z.
                let n = a.n();
                for i in 0..n {
                    let (cols, vals) = a.row(i);
                    let dp = a.diag_pos(i);
                    let mut acc = r[i];
                    for k in 0..dp {
                        acc -= vals[k] * z[cols[k] as usize];
                    }
                    z[i] = acc / diag[i];
                }
                // Scale: w = D y (in place), then backward solve
                // (D+U) z = w in place: position i reads w_i before
                // overwriting it, and only final z_j for j > i.
                for i in 0..n {
                    z[i] *= diag[i];
                }
                for i in (0..n).rev() {
                    let (cols, vals) = a.row(i);
                    let dp = a.diag_pos(i);
                    let mut acc = z[i];
                    for k in dp + 1..cols.len() {
                        acc -= vals[k] * z[cols[k] as usize];
                    }
                    z[i] = acc / diag[i];
                }
                None
            }
            Preconditioner::Ic0(f) => {
                f.solve(r, z);
                None
            }
            Preconditioner::Amg(h) => {
                h.apply(a, r, z);
                None
            }
            Preconditioner::Gmg(h) => {
                h.apply(a, r, z);
                None
            }
        }
    }
}

/// The linear operator a CG solve runs on: the CSR matrix plus an
/// optional matrix-free stencil fast path. The stencil's sweeps are
/// bit-identical to the CSR kernel (see [`crate::stencil`]), so which
/// backend an [`Operator`] dispatches to is purely a performance
/// choice — residual histories and solutions do not change by a ULP.
#[derive(Debug, Clone, Copy)]
pub struct Operator<'a> {
    csr: &'a CsrMatrix,
    stencil: Option<&'a StencilOperator>,
}

impl<'a> Operator<'a> {
    /// A CSR-only operator.
    #[must_use]
    pub fn csr(a: &'a CsrMatrix) -> Self {
        Operator {
            csr: a,
            stencil: None,
        }
    }

    /// An operator with an optional stencil fast path. The stencil, if
    /// present, must have been extracted from exactly this matrix
    /// ([`StencilOperator::from_csr`]).
    #[must_use]
    pub fn with_stencil(a: &'a CsrMatrix, stencil: Option<&'a StencilOperator>) -> Self {
        Operator { csr: a, stencil }
    }

    /// The CSR form (preconditioner setup and triangular sweeps always
    /// read this).
    #[must_use]
    pub fn matrix(&self) -> &'a CsrMatrix {
        self.csr
    }

    /// Whether the matrix-free fast path is active.
    #[must_use]
    pub fn is_matrix_free(&self) -> bool {
        self.stencil.is_some()
    }

    /// `y = A x` through the fastest available backend.
    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        match self.stencil {
            Some(s) => s.matvec(x, y),
            None => self.csr.matvec(x, y),
        }
    }
}

impl Ic0Factor {
    /// Up-looking IC(0) factorization on the sparsity of `lower(a)`.
    /// The matrix is an M-matrix (positive diagonal, non-positive
    /// off-diagonals, diagonally dominant via the ambient grounding), so
    /// the factorization cannot break down; the defensive clamp below
    /// only guards pathological inputs from tests.
    fn factor(a: &CsrMatrix) -> Self {
        let n = a.n();
        // Lower-triangular pattern (columns < i, then the diagonal last).
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0u32);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let dp = a.diag_pos(i);
            for k in 0..dp {
                col_idx.push(cols[k]);
                values.push(vals[k]);
            }
            col_idx.push(i as u32);
            values.push(vals[dp]);
            row_ptr.push(col_idx.len() as u32);
        }

        // Factor in place. When row i is processed, rows < i are final
        // and within row i every entry left of the current one is final.
        for i in 0..n {
            let lo = row_ptr[i] as usize;
            let hi = row_ptr[i + 1] as usize; // diag at hi-1
            for e in lo..hi - 1 {
                let k = col_idx[e] as usize;
                // values[e] currently holds a_ik; subtract
                // sum_m l_im * l_km over shared columns m < k.
                let klo = row_ptr[k] as usize;
                let khi = row_ptr[k + 1] as usize - 1; // k's diag excluded
                let mut s = values[e];
                let (mut x, mut y) = (lo, klo);
                while x < e && y < khi {
                    match col_idx[x].cmp(&col_idx[y]) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            s -= values[x] * values[y];
                            x += 1;
                            y += 1;
                        }
                    }
                }
                // l_kk is final (row k < i).
                values[e] = s / values[khi];
            }
            let mut d = values[hi - 1];
            for v in &values[lo..hi - 1] {
                d -= v * v;
            }
            // M-matrix => d > 0; clamp defensively rather than emit NaN.
            values[hi - 1] = d.max(f64::MIN_POSITIVE).sqrt();
        }
        let inv_diag: Vec<f64> = (0..n)
            .map(|i| 1.0 / values[row_ptr[i + 1] as usize - 1])
            .collect();

        // Transpose (rows of L^T = upper triangular, diagonal first).
        let nnz = col_idx.len();
        let mut t_counts = vec![0u32; n];
        for &j in &col_idx {
            t_counts[j as usize] += 1;
        }
        let mut t_row_ptr = Vec::with_capacity(n + 1);
        t_row_ptr.push(0u32);
        let mut acc = 0u32;
        for &c in &t_counts {
            acc += c;
            t_row_ptr.push(acc);
        }
        let mut t_col_idx = vec![0u32; nnz];
        let mut t_values = vec![0.0f64; nnz];
        let mut cursor: Vec<u32> = t_row_ptr[..n].to_vec();
        for i in 0..n {
            // Rows scanned in order, so each transpose row's columns come
            // out ascending: the diagonal (j == i) lands first.
            for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                let j = col_idx[e] as usize;
                let slot = cursor[j] as usize;
                t_col_idx[slot] = i as u32;
                t_values[slot] = values[e];
                cursor[j] += 1;
            }
        }

        Ic0Factor {
            row_ptr,
            col_idx,
            values,
            inv_diag,
            t_row_ptr,
            t_col_idx,
            t_values,
        }
    }

    /// `z = (L L^T)^-1 r`: forward then backward substitution, the
    /// backward sweep in place.
    fn solve(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        for i in 0..n {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut acc = r[i];
            for e in lo..hi - 1 {
                acc -= self.values[e] * z[self.col_idx[e] as usize];
            }
            z[i] = acc * self.inv_diag[i];
        }
        for i in (0..n).rev() {
            let lo = self.t_row_ptr[i] as usize;
            let hi = self.t_row_ptr[i + 1] as usize;
            // Diagonal first, strictly-upper entries after it.
            let mut acc = z[i];
            for e in lo + 1..hi {
                acc -= self.t_values[e] * z[self.t_col_idx[e] as usize];
            }
            z[i] = acc * self.inv_diag[i];
        }
    }
}

/// Solves `A x = b` by preconditioned conjugate gradient over CSR
/// storage.
///
/// * `prec` must have been built for exactly this `a`
///   ([`Preconditioner::build`]);
/// * `x` holds the initial guess on entry (warm starts welcome — a guess
///   near the solution directly cuts iterations) and the solution on
///   exit;
/// * `ws` provides every work vector; no allocation happens per solve
///   once the workspace has grown to `a.n()`.
///
/// # Errors
///
/// [`ThermalError::NoConvergence`] if the relative residual does not fall
/// below `options.tolerance` within `options.max_iterations`.
///
/// # Panics
///
/// Debug-asserts matching dimensions.
pub fn solve_cg(
    a: &CsrMatrix,
    prec: &Preconditioner,
    b: &[f64],
    x: &mut [f64],
    ws: &mut SolverWorkspace,
    options: &SolverOptions,
) -> Result<SolveStats, ThermalError> {
    solve_cg_with(Operator::csr(a), prec, b, x, ws, options)
}

/// [`solve_cg`] over an [`Operator`] — same contract, with the matvec
/// dispatched through the stencil fast path when one is attached.
///
/// # Errors
///
/// [`ThermalError::NoConvergence`] if the relative residual does not fall
/// below `options.tolerance` within `options.max_iterations`.
pub fn solve_cg_with(
    op: Operator<'_>,
    prec: &Preconditioner,
    b: &[f64],
    x: &mut [f64],
    ws: &mut SolverWorkspace,
    options: &SolverOptions,
) -> Result<SolveStats, ThermalError> {
    // Observability wrapper: counters/histogram always record (a few
    // atomic ops per solve); the residual curve and the per-solve event
    // are only built when a sink is installed.
    let obs = xylem_obs::enabled();
    let mut curve: Vec<f64> = Vec::new();
    let start = std::time::Instant::now();
    let result = solve_cg_raw(op, prec, b, x, ws, options, obs.then_some(&mut curve));
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let (iterations, residual, converged) = match &result {
        Ok(s) => (s.iterations, s.residual, true),
        Err(ThermalError::NoConvergence {
            iterations,
            residual,
            ..
        }) => (*iterations, *residual, false),
        Err(ThermalError::DeadlineExceeded { iterations }) => (*iterations, f64::NAN, false),
        Err(_) => (0, f64::NAN, false),
    };
    xylem_obs::incr(xylem_obs::Counter::SolveCalls);
    xylem_obs::add(xylem_obs::Counter::CgIterations, iterations as u64);
    xylem_obs::set_gauge(xylem_obs::Gauge::LastResidual, residual);
    xylem_obs::record_ns(xylem_obs::Hist::SolveMs, elapsed_ns);
    if obs {
        xylem_obs::event("solve")
            .str("prec", prec.kind().label())
            .u64("n", op.matrix().n() as u64)
            .u64("iters", iterations as u64)
            .f64("residual", residual)
            .bool("converged", converged)
            .f64("ms", elapsed_ns as f64 / 1.0e6)
            .f64_array("residual_curve", &downsample_curve(&curve))
            .emit();
    }
    result
}

/// Cap on residual-curve points kept per solve while iterating.
const CURVE_CAP: usize = 4096;
/// Cap on residual-curve points emitted per solve event.
const CURVE_EMIT: usize = 64;

/// Thins a per-iteration residual curve to at most [`CURVE_EMIT`] points
/// (always keeping the final one) so long solves do not bloat the JSONL.
fn downsample_curve(curve: &[f64]) -> Vec<f64> {
    if curve.len() <= CURVE_EMIT {
        return curve.to_vec();
    }
    let stride = curve.len().div_ceil(CURVE_EMIT);
    let mut out: Vec<f64> = curve.iter().copied().step_by(stride).collect();
    if !(curve.len() - 1).is_multiple_of(stride) {
        if let Some(&last) = curve.last() {
            out.push(last);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn solve_cg_raw(
    op: Operator<'_>,
    prec: &Preconditioner,
    b: &[f64],
    x: &mut [f64],
    ws: &mut SolverWorkspace,
    options: &SolverOptions,
    mut curve: Option<&mut Vec<f64>>,
) -> Result<SolveStats, ThermalError> {
    let a = op.matrix();
    let n = b.len();
    debug_assert_eq!(a.n(), n);
    debug_assert_eq!(x.len(), n);
    ws.resize(n);
    let par = n >= PAR_MIN_ROWS && rayon::current_num_threads() > 1;

    let norm_b = dot_chunked(b, b, &mut ws.partials, par).sqrt();
    if norm_b == 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return Ok(SolveStats {
            iterations: 0,
            residual: 0.0,
        });
    }

    // r = b - A x.
    op.matvec(x, &mut ws.r);
    for (ri, bi) in ws.r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut rr = dot_chunked(&ws.r, &ws.r, &mut ws.partials, par);
    let mut rz = match prec.apply(a, &ws.r, &mut ws.z, &mut ws.partials) {
        Some(rz) => rz,
        None => dot_chunked(&ws.r, &ws.z, &mut ws.partials, par),
    };
    ws.p.copy_from_slice(&ws.z);

    for it in 0..options.max_iterations {
        if it % DEADLINE_CHECK_STRIDE == 0 && deadline_expired() {
            return Err(ThermalError::DeadlineExceeded { iterations: it });
        }
        let res = rr.sqrt() / norm_b;
        if let Some(c) = curve.as_mut() {
            if c.len() < CURVE_CAP {
                c.push(res);
            }
        }
        if res <= options.tolerance {
            return Ok(SolveStats {
                iterations: it,
                residual: res,
            });
        }
        op.matvec(&ws.p, &mut ws.ap);
        let pap = dot_chunked(&ws.p, &ws.ap, &mut ws.partials, par);
        if pap <= 0.0 || !pap.is_finite() {
            // Matrix not SPD along p (should not happen); bail out.
            return Err(ThermalError::NoConvergence {
                iterations: it,
                residual: res,
                tolerance: options.tolerance,
            });
        }
        let alpha = rz / pap;
        rr = fused_xr_update(x, &mut ws.r, &ws.p, &ws.ap, alpha, &mut ws.partials, par);
        let rz_next = match prec.apply(a, &ws.r, &mut ws.z, &mut ws.partials) {
            Some(rz) => rz,
            None => dot_chunked(&ws.r, &ws.z, &mut ws.partials, par),
        };
        let beta = rz_next / rz;
        rz = rz_next;
        fused_p_update(&mut ws.p, &ws.z, beta, par);
    }

    let res = rr.sqrt() / norm_b;
    if res <= options.tolerance {
        Ok(SolveStats {
            iterations: options.max_iterations,
            residual: res,
        })
    } else {
        Err(ThermalError::NoConvergence {
            iterations: options.max_iterations,
            residual: res,
            tolerance: options.tolerance,
        })
    }
}

/// Whether every entry of a candidate solution is a finite number. A
/// solve that "converged" onto NaN/inf must be treated as failed.
fn solution_is_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// [`solve_cg`] wrapped in the fallback ladder: on
/// [`ThermalError::NoConvergence`] — or a nominally converged solution
/// containing non-finite values — the solve escalates through the
/// [`FALLBACK_LADDER`] rungs after `options.preconditioner`, each one
/// cold-restarting from the entry iterate, first converging to a
/// relaxed tolerance ([`relaxed_tolerance`]) and then re-tightening to
/// the requested one. Every rung attempt lands in `report`, so callers
/// observe degraded-mode solves instead of hard errors.
///
/// With `options.fallback == false` this is exactly [`solve_cg`].
///
/// The returned [`SolveStats`] count iterations across the failed
/// attempt and all rungs tried; the residual is the final (recovered)
/// one.
///
/// # Errors
///
/// [`ThermalError::NoConvergence`] only when every rung of the ladder
/// has failed.
pub fn solve_cg_resilient(
    a: &CsrMatrix,
    prec: &Preconditioner,
    b: &[f64],
    x: &mut [f64],
    ws: &mut SolverWorkspace,
    options: &SolverOptions,
    report: &mut RecoveryReport,
) -> Result<SolveStats, ThermalError> {
    solve_cg_resilient_with(Operator::csr(a), prec, b, x, ws, options, report)
}

/// [`solve_cg_resilient`] over an [`Operator`]: the fallback ladder with
/// the stencil fast path active for every matvec (rung preconditioners
/// are still built from the CSR form, which every kind can read).
///
/// # Errors
///
/// [`ThermalError::NoConvergence`] only when every rung of the ladder
/// has failed.
#[allow(clippy::too_many_arguments)]
pub fn solve_cg_resilient_with(
    op: Operator<'_>,
    prec: &Preconditioner,
    b: &[f64],
    x: &mut [f64],
    ws: &mut SolverWorkspace,
    options: &SolverOptions,
    report: &mut RecoveryReport,
) -> Result<SolveStats, ThermalError> {
    if !options.fallback {
        return solve_cg_with(op, prec, b, x, ws, options);
    }
    // Back up the entry iterate so rungs can cold-restart from it. The
    // buffer is workspace-owned: no allocation once it has grown.
    let mut x0 = std::mem::take(&mut ws.x0);
    x0.clear();
    x0.extend_from_slice(x);

    let mut total_iters = 0usize;
    let first = solve_cg_with(op, prec, b, x, ws, options);
    let mut last_residual = match first {
        Ok(stats) => {
            if solution_is_finite(x) {
                ws.x0 = x0;
                return Ok(stats);
            }
            total_iters += stats.iterations;
            f64::INFINITY
        }
        Err(ThermalError::NoConvergence {
            iterations,
            residual,
            ..
        }) => {
            total_iters += iterations;
            residual
        }
        Err(other) => {
            ws.x0 = x0;
            return Err(other);
        }
    };

    let start = FALLBACK_LADDER
        .iter()
        .position(|&k| k == options.preconditioner)
        .map_or(0, |p| p + 1);
    let relaxed = relaxed_tolerance(options.tolerance);
    let rung_cap = options.max_iterations.max(FALLBACK_MIN_ITERATIONS);
    let mut recovered_stats = None;
    for &kind in &FALLBACK_LADDER[start..] {
        x.copy_from_slice(&x0);
        let rung_prec = Preconditioner::build(op.matrix(), kind);
        let mut rung_iters = 0usize;
        let mut rung_residual = f64::INFINITY;
        let mut rung_ok = false;

        let loose = SolverOptions {
            tolerance: relaxed,
            max_iterations: rung_cap,
            preconditioner: kind,
            fallback: false,
        };
        match solve_cg_with(op, &rung_prec, b, x, ws, &loose) {
            Ok(s) if solution_is_finite(x) => {
                rung_iters += s.iterations;
                // Re-tighten: continue from the relaxed solution down to
                // the requested tolerance.
                let tight = SolverOptions {
                    tolerance: options.tolerance,
                    ..loose
                };
                match solve_cg_with(op, &rung_prec, b, x, ws, &tight) {
                    Ok(t) if solution_is_finite(x) => {
                        rung_iters += t.iterations;
                        rung_residual = t.residual;
                        rung_ok = true;
                    }
                    Ok(t) => {
                        rung_iters += t.iterations;
                    }
                    Err(ThermalError::NoConvergence {
                        iterations,
                        residual,
                        ..
                    }) => {
                        rung_iters += iterations;
                        rung_residual = residual;
                    }
                    Err(e @ ThermalError::DeadlineExceeded { .. }) => {
                        // The deadline applies to the whole solve, not
                        // one rung: stop escalating, hand the entry
                        // iterate back untouched.
                        x.copy_from_slice(&x0);
                        ws.x0 = x0;
                        return Err(e);
                    }
                    Err(_) => {}
                }
            }
            Ok(s) => {
                rung_iters += s.iterations;
            }
            Err(ThermalError::NoConvergence {
                iterations,
                residual,
                ..
            }) => {
                rung_iters += iterations;
                rung_residual = residual;
            }
            Err(e @ ThermalError::DeadlineExceeded { .. }) => {
                x.copy_from_slice(&x0);
                ws.x0 = x0;
                return Err(e);
            }
            Err(_) => {}
        }

        total_iters += rung_iters;
        if rung_residual.is_finite() {
            last_residual = rung_residual;
        }
        xylem_obs::incr(xylem_obs::Counter::SolveFallbacks);
        if rung_ok {
            xylem_obs::incr(xylem_obs::Counter::SolveRecoveries);
        }
        if xylem_obs::enabled() {
            xylem_obs::event("solve_fallback")
                .str("from", options.preconditioner.label())
                .str("rung", kind.label())
                .f64("relaxed_tolerance", relaxed)
                .u64("iters", rung_iters as u64)
                .f64("residual", rung_residual)
                .bool("recovered", rung_ok)
                .emit();
        }
        report.record(RecoveryEvent {
            rung: kind,
            relaxed_tolerance: relaxed,
            iterations: rung_iters,
            residual: rung_residual,
            recovered: rung_ok,
        });
        if rung_ok {
            recovered_stats = Some(SolveStats {
                iterations: total_iters,
                residual: rung_residual,
            });
            break;
        }
    }

    ws.x0 = x0;
    match recovered_stats {
        Some(stats) => Ok(stats),
        None => Err(ThermalError::NoConvergence {
            iterations: total_iters,
            residual: last_residual,
            tolerance: options.tolerance,
        }),
    }
}

/// The seed's Jacobi-CG over a caller-supplied matvec closure, kept
/// verbatim as the comparison baseline for the solver-scaling benchmarks
/// and the CSR-equivalence property tests. Allocates its work vectors
/// per call and re-measures `dot(r, r)` every iteration — exactly the
/// costs the CSR path was built to shed.
#[doc(hidden)]
pub fn solve_cg_reference(
    mut matvec: impl FnMut(&[f64], &mut [f64]),
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    options: &SolverOptions,
) -> Result<SolveStats, ThermalError> {
    let n = b.len();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(diag.len(), n);

    let norm_b = dot_naive(b, b).sqrt();
    if norm_b == 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return Ok(SolveStats {
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut r = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut ap = vec![0.0; n];

    matvec(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    for i in 0..n {
        z[i] = r[i] / diag[i];
    }
    p.copy_from_slice(&z);
    let mut rz = dot_naive(&r, &z);

    for it in 0..options.max_iterations {
        let res = dot_naive(&r, &r).sqrt() / norm_b;
        if res <= options.tolerance {
            return Ok(SolveStats {
                iterations: it,
                residual: res,
            });
        }
        matvec(&p, &mut ap);
        let pap = dot_naive(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return Err(ThermalError::NoConvergence {
                iterations: it,
                residual: res,
                tolerance: options.tolerance,
            });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_next = dot_naive(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let res = dot_naive(&r, &r).sqrt() / norm_b;
    if res <= options.tolerance {
        Ok(SolveStats {
            iterations: options.max_iterations,
            residual: res,
        })
    } else {
        Err(ThermalError::NoConvergence {
            iterations: options.max_iterations,
            residual: res,
            tolerance: options.tolerance,
        })
    }
}

fn dot_naive(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Debug-build sanity checks on a converged solution: the reported
/// residual must respect the requested tolerance (with slack for the
/// final-iteration overshoot) and every temperature must be a physically
/// meaningful number (finite, not below absolute zero).
///
/// Compiled to nothing in release builds.
pub fn debug_check_solution(stats: &SolveStats, options: &SolverOptions, temps_c: &[f64]) {
    debug_assert!(
        stats.residual.is_finite() && stats.residual <= options.tolerance * 10.0,
        "solver reported residual {} above tolerance {}",
        stats.residual,
        options.tolerance
    );
    if cfg!(debug_assertions) {
        for (i, &t) in temps_c.iter().enumerate() {
            debug_assert!(
                t.is_finite() && t >= crate::units::ABSOLUTE_ZERO_C,
                "node {i}: unphysical temperature {t} degC"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::chunk_dot;

    fn solve(
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        kind: PreconditionerKind,
    ) -> Result<SolveStats, ThermalError> {
        let prec = Preconditioner::build(a, kind);
        let mut ws = SolverWorkspace::new();
        let options = SolverOptions {
            preconditioner: kind,
            ..SolverOptions::default()
        };
        solve_cg(a, &prec, b, x, &mut ws, &options)
    }

    /// A 1D Laplacian chain: SPD, needs real CG iterations.
    fn chain(n: usize, diag: f64) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, diag));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, &t)
    }

    const ALL_KINDS: [PreconditionerKind; 4] = [
        PreconditionerKind::Jacobi,
        PreconditionerKind::Ssor,
        PreconditionerKind::Ic0,
        PreconditionerKind::Amg,
    ];

    #[test]
    fn solves_diagonal_system() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        for kind in ALL_KINDS {
            let mut x = vec![0.0, 0.0];
            let stats = solve(&a, &[2.0, 8.0], &mut x, kind).unwrap();
            assert!((x[0] - 1.0).abs() < 1e-9, "{kind:?}");
            assert!((x[1] - 2.0).abs() < 1e-9, "{kind:?}");
            assert!(stats.residual <= 1e-9);
        }
    }

    #[test]
    fn solves_spd_system_with_every_preconditioner() {
        let a = CsrMatrix::from_triplets(
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 2.0),
            ],
        );
        let b = vec![1.0, 2.0, 3.0];
        for kind in ALL_KINDS {
            let mut x = vec![0.0; 3];
            solve(&a, &b, &mut x, kind).unwrap();
            let mut ax = vec![0.0; 3];
            a.matvec_serial(&x, &mut ax);
            for i in 0..3 {
                assert!((ax[i] - b[i]).abs() < 1e-8, "{kind:?}: {x:?}");
            }
        }
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        let mut x = vec![5.0, -3.0];
        let stats = solve(&a, &[0.0, 0.0], &mut x, PreconditionerKind::Ic0).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn iteration_cap_reported() {
        // A 1D Laplacian chain with a tight cap.
        let a = chain(50, 2.0);
        let prec = Preconditioner::build(&a, PreconditionerKind::Jacobi);
        let b = vec![1.0; 50];
        let mut x = vec![0.0; 50];
        let mut ws = SolverWorkspace::new();
        let opts = SolverOptions {
            tolerance: 1e-14,
            max_iterations: 2,
            preconditioner: PreconditionerKind::Jacobi,
            fallback: false,
        };
        let err = solve_cg(&a, &prec, &b, &mut x, &mut ws, &opts).unwrap_err();
        match err {
            ThermalError::NoConvergence { iterations, .. } => assert_eq!(iterations, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn ladder_recovers_from_a_starved_iteration_cap() {
        // An iteration cap far below what the chain needs forces the
        // configured AMG attempt to fail; the ladder must escalate and
        // still deliver the tight-tolerance solution.
        let n = 300;
        let a = chain(n, 2.02);
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64 * 0.1).collect();

        let mut reference = vec![0.0; n];
        solve(&a, &b, &mut reference, PreconditionerKind::Ic0).unwrap();

        let opts = SolverOptions {
            tolerance: 1e-9,
            max_iterations: 2,
            preconditioner: PreconditionerKind::Amg,
            fallback: true,
        };
        let prec = Preconditioner::build(&a, opts.preconditioner);
        let mut ws = SolverWorkspace::new();
        let mut x = vec![0.0; n];
        let mut report = RecoveryReport::default();
        let stats = solve_cg_resilient(&a, &prec, &b, &mut x, &mut ws, &opts, &mut report).unwrap();
        assert!(!report.is_empty(), "ladder should have fired");
        assert!(report.recoveries >= 1);
        assert!(report.events.last().unwrap().recovered);
        assert!(stats.residual <= opts.tolerance);
        for (p, q) in x.iter().zip(&reference) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }

    #[test]
    fn resilient_path_is_transparent_when_the_solve_succeeds() {
        let a = chain(120, 2.5);
        let b = vec![1.0; 120];
        let opts = SolverOptions::default();
        let prec = Preconditioner::build(&a, opts.preconditioner);
        let mut ws = SolverWorkspace::new();
        let mut report = RecoveryReport::default();
        let mut x = vec![0.0; 120];
        let s1 = solve_cg_resilient(&a, &prec, &b, &mut x, &mut ws, &opts, &mut report).unwrap();
        let mut y = vec![0.0; 120];
        let s2 = solve_cg(&a, &prec, &b, &mut y, &mut ws, &opts).unwrap();
        assert!(report.is_empty());
        assert_eq!(s1, s2);
        assert_eq!(x, y, "bitwise-identical to the plain path");
    }

    #[test]
    fn ladder_gives_up_when_every_rung_fails() {
        // A poisoned right-hand side (NaN) defeats every preconditioner:
        // each rung bails with a non-finite residual, and the ladder must
        // surface NoConvergence after trying all of them.
        let a = chain(200, 2.0);
        let mut b = vec![1.0; 200];
        b[77] = f64::NAN;
        let opts = SolverOptions {
            tolerance: 1e-9,
            max_iterations: 3,
            preconditioner: PreconditionerKind::Amg,
            fallback: true,
        };
        let prec = Preconditioner::build(&a, opts.preconditioner);
        let mut ws = SolverWorkspace::new();
        let mut report = RecoveryReport::default();
        let mut x = vec![0.0; 200];
        let err =
            solve_cg_resilient(&a, &prec, &b, &mut x, &mut ws, &opts, &mut report).unwrap_err();
        assert!(matches!(err, ThermalError::NoConvergence { .. }));
        assert_eq!(report.attempts, 3, "all rungs after AMG tried");
        assert_eq!(report.recoveries, 0);
    }

    #[test]
    fn recovery_report_merge_respects_the_cap_and_totals() {
        let ev = RecoveryEvent {
            rung: PreconditionerKind::Jacobi,
            relaxed_tolerance: 1e-6,
            iterations: 10,
            residual: 1e-10,
            recovered: true,
        };
        let mut a = RecoveryReport::default();
        for _ in 0..40 {
            a.record(ev);
        }
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.attempts, 80);
        assert_eq!(a.recoveries, 80);
        assert_eq!(a.events.len(), 64, "event detail capped");
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations() {
        // A chain large enough that CG takes real iterations.
        let n = 400;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.5));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &t);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut cold = vec![0.0; n];
        let cold_stats = solve(&a, &b, &mut cold, PreconditionerKind::Ic0).unwrap();
        // Warm start from the solution itself: ~0 iterations.
        let mut warm = cold.clone();
        let warm_stats = solve(&a, &b, &mut warm, PreconditionerKind::Ic0).unwrap();
        assert!(warm_stats.iterations < cold_stats.iterations);
        assert!(warm_stats.iterations <= 1, "{}", warm_stats.iterations);
        for (w, c) in warm.iter().zip(&cold) {
            assert!((w - c).abs() < 1e-8);
        }
    }

    #[test]
    fn expired_deadline_aborts_the_plain_solve() {
        // A deadline already in the past when the solve starts: the
        // periodic in-loop check must abort with DeadlineExceeded and
        // leave the initial guess untouched, and the very same solve
        // must complete once the guard is gone.
        let n = 300;
        let a = chain(n, 2.02);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 * 0.1).collect();
        let guard = DeadlineGuard::install(std::time::Instant::now());
        let mut x = vec![0.0; n];
        let err = solve(&a, &b, &mut x, PreconditionerKind::Jacobi).unwrap_err();
        assert!(
            matches!(err, ThermalError::DeadlineExceeded { .. }),
            "{err}"
        );
        assert!(
            x.iter().all(|v| *v == 0.0),
            "abort must restore the initial guess"
        );
        drop(guard);
        solve(&a, &b, &mut x, PreconditionerKind::Jacobi).unwrap();
    }

    #[test]
    fn expired_deadline_aborts_the_resilient_ladder() {
        // The fallback ladder must not climb through its rungs once the
        // deadline has passed — a blown budget surfaces immediately as
        // DeadlineExceeded, never as NoConvergence after N more tries.
        let n = 300;
        let a = chain(n, 2.02);
        let b = vec![1.0; n];
        let opts = SolverOptions {
            tolerance: 1e-9,
            max_iterations: 2,
            preconditioner: PreconditionerKind::Amg,
            fallback: true,
        };
        let prec = Preconditioner::build(&a, opts.preconditioner);
        let mut ws = SolverWorkspace::new();
        let mut report = RecoveryReport::default();
        let mut x = vec![0.0; n];
        let _guard = DeadlineGuard::install(std::time::Instant::now());
        let err = solve_cg_resilient(&a, &prec, &b, &mut x, &mut ws, &opts, &mut report)
            .expect_err("ladder must abort under an expired deadline");
        assert!(
            matches!(err, ThermalError::DeadlineExceeded { .. }),
            "ladder must abort, not climb: {err}"
        );
    }

    #[test]
    fn deadline_guard_nests_and_uninstalls() {
        assert!(!DeadlineGuard::active());
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let outer = DeadlineGuard::install(far);
        assert!(DeadlineGuard::active());
        {
            let _inner = DeadlineGuard::install(far);
            assert!(DeadlineGuard::active());
        }
        assert!(DeadlineGuard::active(), "inner drop restores the outer");
        drop(outer);
        assert!(!DeadlineGuard::active());
    }

    #[test]
    fn ic0_factor_of_diagonal_matrix_is_sqrt() {
        let a = CsrMatrix::from_triplets(3, &[(0, 0, 4.0), (1, 1, 9.0), (2, 2, 16.0)]);
        let f = Ic0Factor::factor(&a);
        let mut z = vec![0.0; 3];
        f.solve(&[4.0, 9.0, 16.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn ic0_is_exact_for_tridiagonal() {
        // IC(0) of a tridiagonal SPD matrix is the exact Cholesky factor,
        // so PCG converges in one iteration.
        let n = 60;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &t);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = solve(&a, &b, &mut x, PreconditionerKind::Ic0).unwrap();
        assert!(stats.iterations <= 2, "{}", stats.iterations);
    }

    #[test]
    fn gmg_kind_degrades_to_amg_without_geometry() {
        let a = chain(30, 2.2);
        // A bare matrix has no grid geometry: build() degrades to AMG.
        let p = Preconditioner::build(&a, PreconditionerKind::Gmg);
        assert_eq!(p.kind(), PreconditionerKind::Amg);
        // With geometry (a chain is one cell column of 30 layers) the
        // real hierarchy builds and solves.
        let p = Preconditioner::build_gmg(&a, 1, 1, 30).expect("geometry matches");
        assert_eq!(p.kind(), PreconditionerKind::Gmg);
        let b = vec![1.0; 30];
        let mut x = vec![0.0; 30];
        let mut ws = SolverWorkspace::new();
        let opts = SolverOptions {
            preconditioner: PreconditionerKind::Gmg,
            ..SolverOptions::default()
        };
        let stats = solve_cg(&a, &p, &b, &mut x, &mut ws, &opts).unwrap();
        assert!(stats.residual <= opts.tolerance);
        let mut ax = vec![0.0; 30];
        a.matvec_serial(&x, &mut ax);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn stencil_operator_solve_is_bitwise_the_csr_solve() {
        // A 1-cell-column "stack" is stencil-extractable; the CG run
        // through the matrix-free path must match the CSR path bitwise.
        let a = chain(80, 2.3);
        let s = StencilOperator::from_csr(&a, 1, 1, 80).expect("structured");
        let prec = Preconditioner::build(&a, PreconditionerKind::Ic0);
        let opts = SolverOptions {
            preconditioner: PreconditionerKind::Ic0,
            ..SolverOptions::default()
        };
        let b: Vec<f64> = (0..80).map(|i| ((i * 7) % 11) as f64 * 0.2 + 0.1).collect();
        let mut ws = SolverWorkspace::new();
        let mut x_csr = vec![0.0; 80];
        let s1 = solve_cg(&a, &prec, &b, &mut x_csr, &mut ws, &opts).unwrap();
        let mut x_st = vec![0.0; 80];
        let s2 = solve_cg_with(
            Operator::with_stencil(&a, Some(&s)),
            &prec,
            &b,
            &mut x_st,
            &mut ws,
            &opts,
        )
        .unwrap();
        assert_eq!(s1, s2);
        assert!(x_csr
            .iter()
            .zip(&x_st)
            .all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn chunked_dot_is_chunk_order_invariant() {
        // The deterministic-reduction contract: partials may be produced
        // in any order (any thread interleaving) without changing the
        // result, because each partial's value and the fold tree are
        // fixed by the chunk boundaries alone.
        let n = 3 * ROW_CHUNK + 517;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 101) as f64 * 1e-3 - 0.05)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 53) % 97) as f64 * 1e-3 + 0.01)
            .collect();
        let mut partials = vec![0.0; n.div_ceil(ROW_CHUNK)];
        let forward = dot_chunked(&a, &b, &mut partials, false);

        // Recompute the partials in reverse chunk order, then fold with
        // the same tree: must agree bitwise.
        let mut rev: Vec<f64> = vec![0.0; partials.len()];
        for k in (0..rev.len()).rev() {
            let lo = k * ROW_CHUNK;
            let hi = (lo + ROW_CHUNK).min(n);
            rev[k] = chunk_dot(&a[lo..hi], &b[lo..hi]);
        }
        let backward = reduce_pairwise(&mut rev);
        assert_eq!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn reference_and_csr_solvers_agree() {
        let n = 120;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
            if i + 10 < n {
                t.push((i, i + 10, -0.5));
                t.push((i + 10, i, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, &t);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut x_new = vec![0.0; n];
        solve(&a, &b, &mut x_new, PreconditionerKind::Ic0).unwrap();
        let diag = a.diagonal();
        let mut x_ref = vec![0.0; n];
        solve_cg_reference(
            |v, out| a.matvec_serial(v, out),
            &diag,
            &b,
            &mut x_ref,
            &SolverOptions::default(),
        )
        .unwrap();
        for (p, q) in x_new.iter().zip(&x_ref) {
            assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }
}
