//! Linear solvers for the RC network.
//!
//! The conductance matrix is symmetric positive definite (pure conduction
//! plus grounding convection terms on the diagonal), so the steady-state
//! and backward-Euler systems are solved with Jacobi-preconditioned
//! conjugate gradient.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;

/// Options controlling the iterative solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Relative residual tolerance: converged when
    /// `||b - A x|| <= tolerance * ||b||`.
    pub tolerance: f64,
    /// Iteration cap before [`ThermalError::NoConvergence`].
    pub max_iterations: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-9,
            max_iterations: 20_000,
        }
    }
}

/// Statistics from a linear solve (or a sequence of transient solves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Conjugate-gradient iterations performed (summed over transient
    /// steps).
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Solves `A x = b` by Jacobi-preconditioned CG.
///
/// * `matvec(v, out)` computes `out = A v`;
/// * `diag` is the diagonal of `A` (the Jacobi preconditioner);
/// * `x` holds the initial guess on entry and the solution on exit.
///
/// # Errors
///
/// [`ThermalError::NoConvergence`] if the relative residual does not fall
/// below `options.tolerance` within `options.max_iterations`.
pub fn solve_cg(
    mut matvec: impl FnMut(&[f64], &mut [f64]),
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    options: &SolverOptions,
) -> Result<SolveStats, ThermalError> {
    let n = b.len();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(diag.len(), n);

    let norm_b = dot(b, b).sqrt();
    if norm_b == 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return Ok(SolveStats {
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut r = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut ap = vec![0.0; n];

    matvec(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    for i in 0..n {
        z[i] = r[i] / diag[i];
    }
    p.copy_from_slice(&z);
    let mut rz = dot(&r, &z);

    for it in 0..options.max_iterations {
        let res = dot(&r, &r).sqrt() / norm_b;
        if res <= options.tolerance {
            return Ok(SolveStats {
                iterations: it,
                residual: res,
            });
        }
        matvec(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Matrix not SPD along p (should not happen); bail out.
            return Err(ThermalError::NoConvergence {
                iterations: it,
                residual: res,
                tolerance: options.tolerance,
            });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let res = dot(&r, &r).sqrt() / norm_b;
    if res <= options.tolerance {
        Ok(SolveStats {
            iterations: options.max_iterations,
            residual: res,
        })
    } else {
        Err(ThermalError::NoConvergence {
            iterations: options.max_iterations,
            residual: res,
            tolerance: options.tolerance,
        })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Debug-build sanity checks on a converged solution: the reported
/// residual must respect the requested tolerance (with slack for the
/// final-iteration overshoot) and every temperature must be a physically
/// meaningful number (finite, not below absolute zero).
///
/// Compiled to nothing in release builds.
pub fn debug_check_solution(stats: &SolveStats, options: &SolverOptions, temps_c: &[f64]) {
    debug_assert!(
        stats.residual.is_finite() && stats.residual <= options.tolerance * 10.0,
        "solver reported residual {} above tolerance {}",
        stats.residual,
        options.tolerance
    );
    if cfg!(debug_assertions) {
        for (i, &t) in temps_c.iter().enumerate() {
            debug_assert!(
                t.is_finite() && t >= crate::units::ABSOLUTE_ZERO_C,
                "node {i}: unphysical temperature {t} degC"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense symmetric matvec for testing.
    fn dense_matvec(a: &[Vec<f64>]) -> impl FnMut(&[f64], &mut [f64]) + '_ {
        move |x, y| {
            for (i, row) in a.iter().enumerate() {
                y[i] = row.iter().zip(x).map(|(m, v)| m * v).sum();
            }
        }
    }

    #[test]
    fn solves_diagonal_system() {
        let a = vec![vec![2.0, 0.0], vec![0.0, 4.0]];
        let diag = vec![2.0, 4.0];
        let b = vec![2.0, 8.0];
        let mut x = vec![0.0, 0.0];
        let stats = solve_cg(
            dense_matvec(&a),
            &diag,
            &b,
            &mut x,
            &SolverOptions::default(),
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
        assert!(stats.residual <= 1e-9);
    }

    #[test]
    fn solves_spd_system() {
        // SPD 3x3.
        let a = vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ];
        let diag = vec![4.0, 3.0, 2.0];
        let b = vec![1.0, 2.0, 3.0];
        let mut x = vec![0.0; 3];
        solve_cg(
            dense_matvec(&a),
            &diag,
            &b,
            &mut x,
            &SolverOptions::default(),
        )
        .unwrap();
        // Check residual directly.
        let mut ax = vec![0.0; 3];
        dense_matvec(&a)(&x, &mut ax);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-8, "{:?}", x);
        }
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let diag = vec![2.0, 2.0];
        let b = vec![0.0, 0.0];
        let mut x = vec![5.0, -3.0];
        let stats = solve_cg(
            dense_matvec(&a),
            &diag,
            &b,
            &mut x,
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn iteration_cap_reported() {
        // An SPD system with a tight cap.
        let n = 50;
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 2.0;
            if i + 1 < n {
                a[i][i + 1] = -1.0;
                a[i + 1][i] = -1.0;
            }
        }
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = SolverOptions {
            tolerance: 1e-14,
            max_iterations: 2,
        };
        let err = solve_cg(dense_matvec(&a), &diag, &b, &mut x, &opts).unwrap_err();
        match err {
            ThermalError::NoConvergence { iterations, .. } => assert_eq!(iterations, 2),
            other => panic!("unexpected error {other}"),
        }
    }
}
