//! Thermal materials: conductivity and volumetric heat capacity.
//!
//! All quantities are SI and carried in the newtypes of [`crate::units`]:
//! conductivity as [`WattsPerMeterKelvin`], volumetric heat capacity as
//! [`VolumetricHeatCapacity`], lengths in raw meters. The constants in this
//! module are the values used by the Xylem paper (Table 1) and its cited
//! sources (Black et al. 2006, Emma et al. 2014, HotSpot, Loh 2008,
//! Matsumoto 2010, Colgan 2012/13).
//!
//! This file (with `power/src/blocks.rs`) is the only place physical
//! constants are allowed to appear as numeric literals; `xylem-lint`
//! (rule `magic-constant`) flags them anywhere else.

use serde::{Deserialize, Serialize};

use crate::units::{VolumetricHeatCapacity, WattsPerMeterKelvin};

/// A homogeneous thermal material.
///
/// # Example
///
/// ```
/// use xylem_thermal::material::Material;
/// use xylem_thermal::units::{VolumetricHeatCapacity, WattsPerMeterKelvin};
/// let si = Material::new(
///     "silicon",
///     WattsPerMeterKelvin::new(120.0),
///     VolumetricHeatCapacity::new(1.75e6),
/// );
/// assert_eq!(si.conductivity(), 120.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Material {
    name: String,
    conductivity: WattsPerMeterKelvin,
    volumetric_heat_capacity: VolumetricHeatCapacity,
}

impl Material {
    /// Creates a material from its name and typed properties. Validation
    /// (finite, strictly positive) happens in the unit constructors, so
    /// this cannot fail.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        conductivity: WattsPerMeterKelvin,
        volumetric_heat_capacity: VolumetricHeatCapacity,
    ) -> Self {
        Material {
            name: name.into(),
            conductivity,
            volumetric_heat_capacity,
        }
    }

    /// Material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thermal conductivity.
    pub fn conductivity(&self) -> WattsPerMeterKelvin {
        self.conductivity
    }

    /// Volumetric heat capacity.
    pub fn volumetric_heat_capacity(&self) -> VolumetricHeatCapacity {
        self.volumetric_heat_capacity
    }

    /// Thermal resistance per unit area of a slab of this material with the
    /// given thickness: `Rth = t / lambda`, in m^2-K/W.
    ///
    /// Multiply by 1e6 to express in the paper's mm^2-K/W.
    pub fn rth_per_area(&self, thickness: f64) -> f64 {
        self.conductivity.rth_per_area(thickness)
    }

    /// Area-weighted parallel blend of two materials (the paper's rule of
    /// mixtures, Sec. 6.1): `lambda = rho_a*lambda_a + rho_b*lambda_b`.
    ///
    /// `fraction_a` is the fractional area occupancy of `self`; the remainder
    /// is `other`. Heat capacities blend the same way.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_a` is outside `[0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use xylem_thermal::material::{COPPER, SILICON};
    /// // The paper's TSV bus: 25% Cu (400) + 75% Si (120) = 190 W/m-K.
    /// let bus = COPPER.blend(&SILICON, 0.25, "tsv-bus");
    /// assert!((bus.conductivity().get() - 190.0).abs() < 1e-9);
    /// ```
    pub fn blend(&self, other: &Material, fraction_a: f64, name: impl Into<String>) -> Material {
        assert!(
            (0.0..=1.0).contains(&fraction_a),
            "fraction_a = {fraction_a} outside [0, 1]"
        );
        let fb = 1.0 - fraction_a;
        Material {
            name: name.into(),
            conductivity: WattsPerMeterKelvin::new(
                fraction_a * self.conductivity.get() + fb * other.conductivity.get(),
            ),
            volumetric_heat_capacity: VolumetricHeatCapacity::new(
                fraction_a * self.volumetric_heat_capacity.get()
                    + fb * other.volumetric_heat_capacity.get(),
            ),
        }
    }
}

macro_rules! const_material {
    ($(#[$doc:meta])* $name:ident, $str_name:expr, $k:expr, $c:expr) => {
        $(#[$doc])*
        pub static $name: Material = Material {
            name: String::new(),
            conductivity: WattsPerMeterKelvin::new($k),
            volumetric_heat_capacity: VolumetricHeatCapacity::new($c),
        };
    };
}

// NOTE: `String::new()` is const; `name()` of the statics returns "". Use
// `named_constant` below when a display name matters.

const_material!(
    /// Bulk silicon: 120 W/m-K (paper Table 1), 1.75e6 J/m^3-K (HotSpot).
    SILICON, "silicon", 120.0, 1.75e6
);
const_material!(
    /// Copper (TSV/TTSV fill, heat sink, IHS): 400 W/m-K, 3.4e6 J/m^3-K.
    COPPER, "copper", 400.0, 3.4e6
);
const_material!(
    /// Processor frontside metal + active logic layer: 12 W/m-K (Table 1).
    PROC_METAL, "proc-metal", 12.0, 2.0e6
);
const_material!(
    /// DRAM frontside metal (Al routing + dielectric): 9 W/m-K (Table 1).
    DRAM_METAL, "dram-metal", 9.0, 2.0e6
);
const_material!(
    /// Average die-to-die layer with 25%-density dummy microbumps:
    /// 1.5 W/m-K as measured by IBM (Colgan) and Matsumoto et al.
    D2D_AVERAGE, "d2d-average", 1.5, 2.0e6
);
const_material!(
    /// A single Cu-pillar/solder microbump: 40 W/m-K (Matsumoto 2010).
    MICROBUMP, "microbump", 40.0, 3.0e6
);
const_material!(
    /// Thermal interface material: 5 W/m-K (Table 1).
    TIM, "tim", 5.0, 4.0e6
);
const_material!(
    /// Underfill / dielectric fill between microbumps: ~0.5 W/m-K (Sec 2.3).
    UNDERFILL, "underfill", 0.5, 2.0e6
);

/// Thickness of a Cu-pillar/solder microbump, m (Matsumoto 2010).
const BUMP_THICKNESS: f64 = 18e-6;

/// Thickness of the TTSV short / backside-metal crossing, m (Sec. 4.1.2).
const SHORT_THICKNESS: f64 = 2e-6;

/// The paper's TSV-bus composite: 25% Cu in Si, effective 190 W/m-K.
pub fn tsv_bus() -> Material {
    COPPER.blend(&SILICON, 0.25, "tsv-bus")
}

/// Effective D2D material at an aligned-and-shorted dummy microbump/TTSV
/// site (Sec. 4.1.2).
///
/// The local resistance is `t_bump/lambda_bump + t_short/lambda_cu`
/// = 18 um / 40 + 2 um / 400 = 0.46 mm^2-K/W. Expressed as an effective
/// conductivity of the full `d2d_thickness` slab so it can be rasterized
/// into the D2D layer grid.
pub fn shorted_pillar_d2d(d2d_thickness: f64) -> Material {
    let rth = MICROBUMP.conductivity().rth_per_area(BUMP_THICKNESS)
        + COPPER.conductivity().rth_per_area(SHORT_THICKNESS);
    Material {
        name: "d2d-shorted-pillar".into(),
        conductivity: WattsPerMeterKelvin::new(d2d_thickness / rth),
        volumetric_heat_capacity: MICROBUMP.volumetric_heat_capacity(),
    }
}

/// Effective D2D material of the **electrical** TSV-bus region.
///
/// Electrical microbumps are connected by construction: TSV -> backside
/// metal -> microbump -> frontside metal -> devices (paper Fig. 4), so
/// each electrical bump is a (weaker) vertical pillar whose path also
/// crosses the frontside metal (0.22 mm^2-K/W). At the electrical-bump
/// density of (17/50)^2 ~ 11.6%, blended with the average D2D fill. This
/// is the "limited contribution" of electrical TSVs the paper notes in
/// Sec. 4.1 — clustered at the die center, oblivious to hotspots.
pub fn electrical_bus_d2d(d2d_thickness: f64) -> Material {
    let rth_bump = MICROBUMP.conductivity().rth_per_area(BUMP_THICKNESS)
        + COPPER.conductivity().rth_per_area(SHORT_THICKNESS)
        + DRAM_METAL.conductivity().rth_per_area(SHORT_THICKNESS); // frontside metal crossing
    let bump_path = Material {
        name: "d2d-electrical-path".into(),
        conductivity: WattsPerMeterKelvin::new(d2d_thickness / rth_bump),
        volumetric_heat_capacity: MICROBUMP.volumetric_heat_capacity(),
    };
    // Electrical-bump density: a 17x17 bump field on a 50x50 site grid.
    let density = (17.0_f64 / 50.0) * (17.0 / 50.0);
    bump_path.blend(&D2D_AVERAGE, density, "d2d-electrical-bus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_bus_between_average_and_pillar() {
        let bus = electrical_bus_d2d(20e-6);
        assert!(bus.conductivity() > D2D_AVERAGE.conductivity());
        assert!(bus.conductivity() < shorted_pillar_d2d(20e-6).conductivity());
        // Roughly 3-4x the average D2D conductivity.
        let ratio = bus.conductivity().get() / D2D_AVERAGE.conductivity().get();
        assert!((2.0..5.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn unit_constructors_reject_bad_values() {
        // Validation moved into the unit newtypes: a Material can only be
        // built from already-valid quantities.
        assert!(WattsPerMeterKelvin::try_new(0.0).is_err());
        assert!(WattsPerMeterKelvin::try_new(-3.0).is_err());
        assert!(WattsPerMeterKelvin::try_new(f64::NAN).is_err());
        assert!(VolumetricHeatCapacity::try_new(0.0).is_err());
        assert!(VolumetricHeatCapacity::try_new(f64::INFINITY).is_err());
        let m = Material::new(
            "x",
            WattsPerMeterKelvin::new(1.0),
            VolumetricHeatCapacity::new(1.0),
        );
        assert_eq!(m.conductivity(), 1.0);
    }

    #[test]
    fn rth_matches_paper_numbers() {
        // D2D layer: 20 um / 1.5 W/m-K = 13.33 mm^2-K/W.
        let rth_mm2 = D2D_AVERAGE.rth_per_area(20e-6) * 1e6;
        assert!((rth_mm2 - 13.333).abs() < 0.01, "{rth_mm2}");
        // Bulk silicon: 100 um / 120 = 0.83 mm^2-K/W.
        let rth_si = SILICON.rth_per_area(100e-6) * 1e6;
        assert!((rth_si - 0.8333).abs() < 0.001, "{rth_si}");
        // Processor metal layers: 12 um / 12 = 1.0 mm^2-K/W.
        let rth_m = PROC_METAL.rth_per_area(12e-6) * 1e6;
        assert!((rth_m - 1.0).abs() < 1e-12, "{rth_m}");
    }

    #[test]
    fn d2d_is_16x_more_resistive_than_silicon() {
        let d2d = D2D_AVERAGE.rth_per_area(20e-6);
        let si = SILICON.rth_per_area(100e-6);
        let ratio = d2d / si;
        assert!((15.0..17.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn d2d_is_13x_more_resistive_than_metal() {
        let d2d = D2D_AVERAGE.rth_per_area(20e-6);
        let metal = PROC_METAL.rth_per_area(12e-6);
        let ratio = d2d / metal;
        assert!((13.0..14.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn tsv_bus_blend() {
        assert!((tsv_bus().conductivity().get() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn blend_endpoints() {
        let a = COPPER.blend(&SILICON, 1.0, "a");
        assert_eq!(a.conductivity(), COPPER.conductivity());
        let b = COPPER.blend(&SILICON, 0.0, "b");
        assert_eq!(b.conductivity(), SILICON.conductivity());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn blend_rejects_bad_fraction() {
        let _ = COPPER.blend(&SILICON, 1.5, "x");
    }

    #[test]
    fn shorted_pillar_rth_is_0_46_mm2() {
        let m = shorted_pillar_d2d(20e-6);
        let rth_mm2 = m.rth_per_area(20e-6) * 1e6;
        assert!((rth_mm2 - 0.46).abs() < 0.01, "{rth_mm2}");
        // ~29x lower than the average D2D resistance.
        let avg = D2D_AVERAGE.rth_per_area(20e-6) * 1e6;
        let improvement = avg / rth_mm2;
        assert!((28.0..31.0).contains(&improvement), "{improvement}");
    }
}
