//! Error type for the thermal simulator.

use std::fmt;

/// Errors produced when building or solving a thermal model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A geometric quantity (width, height, thickness, ...) was not strictly
    /// positive or not finite.
    InvalidGeometry {
        /// What was being validated.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A material property (conductivity, heat capacity) was invalid.
    InvalidMaterial {
        /// What was being validated.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A floorplan block fell outside the die outline or overlapped another
    /// block.
    BadFloorplan {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A layer, block, or node index was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: &'static str,
        /// The requested index.
        index: usize,
        /// The number of valid entries.
        len: usize,
    },
    /// The stack had no layers, or layers with mismatched outlines.
    BadStack {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// A power map was built for a different model (size mismatch).
    PowerMapMismatch {
        /// Nodes in the power map.
        map_nodes: usize,
        /// Nodes in the model.
        model_nodes: usize,
    },
    /// Transient integration was asked to run with a non-positive step.
    InvalidTimeStep {
        /// The offending time step in seconds.
        dt: f64,
    },
    /// A temperature vector supplied from outside the solver (e.g. a
    /// checkpoint restore) contained a NaN or infinite entry.
    NonFiniteTemperature {
        /// Index of the first offending node.
        node: usize,
    },
    /// An adaptive-stepping option was out of range (see
    /// [`crate::adaptive::AdaptiveOptions::validate`]).
    InvalidAdaptiveConfig {
        /// Which option was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A solve was aborted because the caller-installed wall-clock
    /// deadline (see [`crate::solve::DeadlineGuard`]) expired mid-solve.
    DeadlineExceeded {
        /// Iterations performed before the deadline fired.
        iterations: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidGeometry { what, value } => {
                write!(f, "invalid geometry: {what} = {value}")
            }
            ThermalError::InvalidMaterial { what, value } => {
                write!(f, "invalid material property: {what} = {value}")
            }
            ThermalError::BadFloorplan { reason } => write!(f, "bad floorplan: {reason}"),
            ThermalError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            ThermalError::BadStack { reason } => write!(f, "bad stack: {reason}"),
            ThermalError::NoConvergence {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations \
                 (residual {residual:.3e}, tolerance {tolerance:.3e})"
            ),
            ThermalError::PowerMapMismatch {
                map_nodes,
                model_nodes,
            } => write!(
                f,
                "power map has {map_nodes} nodes but model has {model_nodes}"
            ),
            ThermalError::InvalidTimeStep { dt } => {
                write!(f, "invalid time step {dt} s (must be positive and finite)")
            }
            ThermalError::NonFiniteTemperature { node } => {
                write!(f, "non-finite temperature at node {node}")
            }
            ThermalError::InvalidAdaptiveConfig { what, value } => {
                write!(f, "invalid adaptive option {what} = {value}")
            }
            ThermalError::DeadlineExceeded { iterations } => {
                write!(
                    f,
                    "solve aborted by wall-clock deadline after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<ThermalError> = vec![
            ThermalError::InvalidGeometry {
                what: "width".into(),
                value: -1.0,
            },
            ThermalError::InvalidMaterial {
                what: "conductivity".into(),
                value: 0.0,
            },
            ThermalError::BadFloorplan {
                reason: "overlap".into(),
            },
            ThermalError::IndexOutOfRange {
                what: "layer",
                index: 9,
                len: 3,
            },
            ThermalError::BadStack {
                reason: "empty".into(),
            },
            ThermalError::NoConvergence {
                iterations: 10,
                residual: 1.0,
                tolerance: 1e-9,
            },
            ThermalError::PowerMapMismatch {
                map_nodes: 1,
                model_nodes: 2,
            },
            ThermalError::InvalidTimeStep { dt: 0.0 },
            ThermalError::NonFiniteTemperature { node: 7 },
            ThermalError::InvalidAdaptiveConfig {
                what: "rtol",
                value: -1.0,
            },
            ThermalError::DeadlineExceeded { iterations: 12 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }
}
