//! Layer-by-layer thermal reporting: where the temperature drops.
//!
//! The paper's core argument (Sec. 2.5, Fig. 3) is about *which layer*
//! the temperature falls across. [`StackThermalReport`] measures that on
//! a solved field: per-layer mean temperatures, the drop across each
//! interface going down the stack, and each layer's share of the total
//! rise — the quantitative version of "the D2D layers are the
//! bottleneck".

use serde::{Deserialize, Serialize};

use crate::model::ThermalModel;
use crate::temperature::TemperatureField;

/// One layer's entry in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReportEntry {
    /// Layer name.
    pub name: String,
    /// Mean temperature of the layer, deg C.
    pub mean_c: f64,
    /// Hotspot of the layer, deg C.
    pub max_c: f64,
    /// Mean temperature rise over the layer directly above (0 for the
    /// top layer), K. Node-centered semantics: this step spans the lower
    /// half of the layer above plus the upper half of this layer, so a
    /// bottleneck layer shows up in its own step *and* the next one.
    pub drop_from_above: f64,
}

/// Per-layer thermal breakdown of a solved stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackThermalReport {
    /// Entries, top (sink side) to bottom.
    pub layers: Vec<LayerReportEntry>,
    /// Ambient temperature, deg C.
    pub ambient_c: f64,
}

impl StackThermalReport {
    /// Builds the report from a model and its solved field.
    pub fn new(model: &ThermalModel, temps: &TemperatureField) -> Self {
        let mut layers = Vec::with_capacity(model.n_user_layers());
        let mut prev_mean: Option<f64> = None;
        for (l, name) in model.user_layer_names().iter().enumerate() {
            let mean = temps.mean_of_layer(l).get();
            let max = temps.max_of_layer(l).get();
            layers.push(LayerReportEntry {
                name: name.clone(),
                mean_c: mean,
                max_c: max,
                drop_from_above: prev_mean.map_or(0.0, |p| mean - p),
            });
            prev_mean = Some(mean);
        }
        StackThermalReport {
            layers,
            ambient_c: model.ambient().get(),
        }
    }

    /// Total mean rise from the top user layer to the bottom one, K.
    pub fn total_internal_rise(&self) -> f64 {
        match (self.layers.first(), self.layers.last()) {
            (Some(top), Some(bottom)) => bottom.mean_c - top.mean_c,
            _ => 0.0,
        }
    }

    /// Fraction of the internal rise attributed to layers whose name
    /// matches `predicate` (e.g. all `d2d*` layers).
    pub fn rise_share(&self, predicate: impl Fn(&str) -> bool) -> f64 {
        let total = self.total_internal_rise();
        if total <= 0.0 {
            return 0.0;
        }
        let share: f64 = self
            .layers
            .iter()
            .filter(|e| predicate(&e.name))
            .map(|e| e.drop_from_above.max(0.0))
            .sum();
        share / total
    }

    /// Renders a plain-text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>9} {:>10}",
            "layer", "mean C", "max C", "step K"
        );
        for e in &self.layers {
            let _ = writeln!(
                out,
                "{:<16} {:>9.2} {:>9.2} {:>10.3}",
                e.name, e.mean_c, e.max_c, e.drop_from_above
            );
        }
        let _ = writeln!(
            out,
            "internal rise {:.2} K over ambient {:.1} C",
            self.total_internal_rise(),
            self.ambient_c
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::layer::Layer;
    use crate::material::{D2D_AVERAGE, DRAM_METAL, SILICON};
    use crate::power::PowerMap;
    use crate::stack::Stack;

    fn solved() -> (ThermalModel, TemperatureField) {
        let die = 8e-3;
        let stack = Stack::builder(die, die)
            .layer(Layer::uniform("dram_si", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("dram_metal", 2e-6, DRAM_METAL.clone()))
            .layer(Layer::uniform("d2d0", 20e-6, D2D_AVERAGE.clone()))
            .layer(Layer::uniform("proc_si", 100e-6, SILICON.clone()))
            .build()
            .unwrap();
        let m = stack.discretize(GridSpec::new(8, 8)).unwrap();
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(3, crate::units::Watts::new(15.0));
        let t = m.steady_state(&p).unwrap();
        (m, t)
    }

    #[test]
    fn report_orders_layers_and_measures_drops() {
        let (m, t) = solved();
        let r = StackThermalReport::new(&m, &t);
        assert_eq!(r.layers.len(), 4);
        assert_eq!(r.layers[0].name, "dram_si");
        assert_eq!(r.layers[0].drop_from_above, 0.0);
        // Heat flows up: every lower layer is warmer on average.
        for w in r.layers.windows(2) {
            assert!(w[1].mean_c > w[0].mean_c);
        }
        assert!(r.total_internal_rise() > 0.0);
    }

    #[test]
    fn d2d_dominates_the_internal_rise() {
        let (m, t) = solved();
        let r = StackThermalReport::new(&m, &t);
        // Node-centered steps: the D2D resistance shows up half in the
        // step *into* the D2D node and half in the step out of it (into
        // proc_si). Together they carry nearly the whole internal rise.
        let d2d_in = r.rise_share(|n| n.starts_with("d2d"));
        let d2d_out = r.rise_share(|n| n == "proc_si");
        assert!(d2d_in > 0.35, "{d2d_in}");
        assert!(d2d_in + d2d_out > 0.9, "{d2d_in} + {d2d_out}");
        // And the D2D step dwarfs the silicon-to-metal step.
        let steps: Vec<f64> = r.layers.iter().map(|e| e.drop_from_above).collect();
        assert!(steps[2] > 5.0 * steps[1], "{steps:?}");
    }

    #[test]
    fn render_contains_all_layers() {
        let (m, t) = solved();
        let r = StackThermalReport::new(&m, &t);
        let s = r.render();
        for e in &r.layers {
            assert!(s.contains(&e.name));
        }
        assert!(s.contains("internal rise"));
    }
}
