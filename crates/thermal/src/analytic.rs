//! Closed-form one-dimensional solutions used to validate the solver.
//!
//! When the package has no lateral extent beyond the die (spreader and sink
//! the same size as the die) and power is applied uniformly over one layer,
//! heat flow is purely vertical and the steady state has a closed form:
//! every node sits at `T_amb + P * R(path from node to ambient)`.
//! The validation tests compare the RC solver against these values.

use crate::package::Package;
use crate::stack::Stack;
use crate::units::Watts;

/// Temperature drop across a slab: `q * t / lambda` where `q` is the heat
/// flux (W/m^2), `t` the thickness (m), `lambda` the conductivity (W/m-K).
pub fn slab_delta_t(heat_flux: f64, thickness: f64, lambda: f64) -> f64 {
    heat_flux * thickness / lambda
}

/// Per-layer one-dimensional thermal resistances (K/W) of a stack + package
/// for a die of area `A` — the quantities behind the paper's Sec. 2.5
/// analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct OneDimensionalReport {
    /// Convection resistance (K/W).
    pub convection: f64,
    /// Sink conduction resistance (K/W), full thickness.
    pub sink: f64,
    /// Spreader conduction resistance (K/W), full thickness.
    pub spreader: f64,
    /// TIM conduction resistance (K/W), full thickness.
    pub tim: f64,
    /// Per user layer, top to bottom: `(name, resistance K/W)` using the
    /// base material.
    pub layers: Vec<(String, f64)>,
}

impl OneDimensionalReport {
    /// Computes the report for `stack`, treating every layer as its base
    /// material and using the die area for all conduction terms.
    pub fn for_stack(stack: &Stack) -> Self {
        let area = stack.width() * stack.height();
        let p = stack.package();
        OneDimensionalReport {
            convection: p.convection_resistance(),
            sink: p.sink_thickness() / (p.sink_material().conductivity().get() * area),
            spreader: p.spreader_thickness() / (p.spreader_material().conductivity().get() * area),
            tim: p.tim_thickness() / (p.tim_material().conductivity().get() * area),
            layers: stack
                .layers()
                .iter()
                .map(|l| {
                    (
                        l.name().to_string(),
                        l.thickness() / (l.base_material().conductivity().get() * area),
                    )
                })
                .collect(),
        }
    }

    /// Total resistance from the center of user layer `layer` up to ambient
    /// (K/W): convection + **half** the sink (the RC discretization is
    /// node-centered, and convection attaches at the sink node center) +
    /// spreader + TIM + all layers above + half of `layer` itself.
    pub fn resistance_to_ambient(&self, layer: usize) -> f64 {
        let mut r = self.convection + self.sink / 2.0 + self.spreader + self.tim;
        for (i, (_, rl)) in self.layers.iter().enumerate() {
            if i < layer {
                r += rl;
            } else if i == layer {
                r += rl / 2.0;
                break;
            }
        }
        r
    }
}

/// Predicted steady-state node temperature (deg C) at the center of each
/// user layer when `watts` are injected uniformly into `power_layer`, for
/// a **1-D package** (spreader and sink no larger than the die, no board
/// path). Returns one temperature per user layer, top to bottom.
///
/// Heat flows only upward from the power layer; layers below it float at
/// the power layer's upper-path temperature (no flux below means no
/// gradient below).
pub fn one_dimensional_temperatures(stack: &Stack, watts: Watts, power_layer: usize) -> Vec<f64> {
    let report = OneDimensionalReport::for_stack(stack);
    let ambient = stack.package().ambient();
    let w = watts.get();
    let r_source = report.resistance_to_ambient(power_layer);
    (0..stack.len())
        .map(|l| {
            if l <= power_layer {
                ambient
                    + w * report
                        .resistance_to_ambient(l.min(power_layer))
                        .min(r_source)
            } else {
                // No heat flows below the source: isothermal with the source
                // node.
                ambient + w * r_source
            }
        })
        .collect()
}

/// A package with **no lateral spreading** (sink and spreader exactly the
/// die size) and no board path — the configuration the 1-D validation
/// formulas assume.
pub fn one_dimensional_package(die_width: f64, die_height: f64) -> Package {
    // `default_for_die` then shrink. Package fields are private; rebuild via
    // its builder-style methods is not possible for the sizes, so we expose
    // this helper from the package module instead.
    Package::one_dimensional(die_width, die_height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::layer::Layer;
    use crate::material::{D2D_AVERAGE, SILICON};
    use crate::power::PowerMap;
    use crate::stack::Stack;

    fn one_d_stack() -> Stack {
        let die = 8e-3;
        Stack::builder(die, die)
            .package(one_dimensional_package(die, die))
            .layer(Layer::uniform("si-top", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
            .layer(Layer::uniform("si-bot", 100e-6, SILICON.clone()))
            .build()
            .unwrap()
    }

    #[test]
    fn slab_formula() {
        // 10 W over 64 mm^2 through 20 um of 1.5 W/m-K.
        let q = 10.0 / 64e-6;
        let dt = slab_delta_t(q, 20e-6, 1.5);
        assert!((dt - 2.0833).abs() < 1e-3, "{dt}");
    }

    #[test]
    fn solver_matches_one_dimensional_prediction() {
        let stack = one_d_stack();
        let model = stack.discretize(GridSpec::new(8, 8)).unwrap();
        let mut p = PowerMap::zeros(&model);
        let watts = 20.0;
        p.add_uniform_layer_power(2, crate::units::Watts::new(watts));
        let temps = model.steady_state(&p).unwrap();
        let predicted = one_dimensional_temperatures(&stack, Watts::new(watts), 2);
        for l in 0..3 {
            let got = temps.mean_of_layer(l).get();
            let want = predicted[l];
            assert!(
                (got - want).abs() < 0.05,
                "layer {l}: solver {got:.3} vs analytic {want:.3}"
            );
        }
    }

    #[test]
    fn resistance_accumulates_downward() {
        let stack = one_d_stack();
        let r = OneDimensionalReport::for_stack(&stack);
        assert!(r.resistance_to_ambient(0) < r.resistance_to_ambient(1));
        assert!(r.resistance_to_ambient(1) < r.resistance_to_ambient(2));
    }

    #[test]
    fn d2d_dominates_conduction_resistance() {
        let stack = one_d_stack();
        let r = OneDimensionalReport::for_stack(&stack);
        let d2d = r.layers[1].1;
        let si = r.layers[0].1;
        let ratio = d2d / si;
        assert!((15.0..17.0).contains(&ratio), "{ratio}");
    }
}
