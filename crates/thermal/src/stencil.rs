//! Matrix-free structured-grid form of the conductance matrix.
//!
//! The grid portion of a [`crate::model::ThermalModel`] matrix is a pure
//! 7-point stencil: node `i = l*nx*ny + iy*nx + ix` couples only to its
//! x/y neighbors in the same layer and to the cells directly above and
//! below. [`StencilOperator`] stores those couplings as seven per-node
//! *coefficient planes* (`up`, `south`, `west`, `diag`, `east`, `north`,
//! `down`), so the matvec inner loop is an x-line sweep over contiguous
//! arrays with fixed strides — no CSR column-index loads, and neighbor
//! presence is decided per line/span rather than per entry, which keeps
//! the hot span a branch-free SIMD-friendly fused-multiply chain.
//!
//! The handful of rows that are *not* structured — the package rim
//! couplings from edge cells of the spreader/sink layers to the 12
//! peripheral tail nodes, and the tail rows themselves — are kept in a
//! small CSR-like side structure walked after the stencil terms.
//!
//! # Bit-identity with the CSR matvec
//!
//! Within a row, CSR stores columns ascending and folds
//! `acc += a_ij * x_j` left to right from `acc = 0.0`
//! ([`CsrMatrix::matvec_serial`]). For a structured node the ascending
//! column order is exactly `up (i-nx*ny)`, `south (i-nx)`, `west (i-1)`,
//! `diag (i)`, `east (i+1)`, `north (i+nx)`, `down (i+nx*ny)`, followed
//! by any rim columns (all `>=` the grid-node count). The stencil sweep
//! folds its terms in that same order, *skipping* absent neighbors
//! entirely (never multiplying by a stored zero, which could flip the
//! sign of a zero or round differently), so `y` is bitwise identical to
//! the CSR result — the solver can switch backends without perturbing a
//! single ULP. [`StencilOperator::from_csr`] verifies the structure
//! entry-by-entry during extraction and refuses (returns `None`) on any
//! matrix that is not exactly this shape.
//!
//! Parallel sweeps reuse the CSR kernel's row-chunk partition
//! ([`crate::csr`]'s `ROW_CHUNK` / [`PAR_MIN_ROWS`]), so serial and
//! parallel runs remain bitwise identical across thread counts.

use rayon::{current_num_threads, scope};

use crate::csr::{CsrMatrix, PAR_MIN_ROWS, ROW_CHUNK};

/// Neighbor-presence flags that are constant along one x-line.
#[derive(Clone, Copy)]
struct LineFlags {
    up: bool,
    south: bool,
    north: bool,
    down: bool,
}

/// 7-point coefficient-plane operator plus rim/tail side structure.
///
/// Built from (and bit-identical to) a structured [`CsrMatrix`] via
/// [`StencilOperator::from_csr`]; see the module docs for the layout.
#[derive(Debug, Clone)]
pub struct StencilOperator {
    nx: usize,
    ny: usize,
    nl: usize,
    /// `nx * ny`.
    cells: usize,
    /// Total matrix dimension (grid nodes + tail nodes).
    n: usize,
    /// Coefficient planes, each `nl * cells` long, indexed by node.
    /// Off-diagonals hold the actual matrix coefficients (`-G`);
    /// entries for absent neighbors are never read.
    up: Vec<f64>,
    south: Vec<f64>,
    west: Vec<f64>,
    diag: Vec<f64>,
    east: Vec<f64>,
    north: Vec<f64>,
    down: Vec<f64>,
    /// Rim couplings grid-node -> tail-node, CSR-style: node `i`'s rim
    /// entries are `rim_cols/rim_vals[rim_ptr[i]..rim_ptr[i+1]]`,
    /// columns ascending. Empty for all but package-layer edge cells.
    rim_ptr: Vec<u32>,
    rim_cols: Vec<u32>,
    rim_vals: Vec<f64>,
    /// Tail rows (the 12 package periphery nodes), verbatim CSR copies.
    tail_ptr: Vec<u32>,
    tail_cols: Vec<u32>,
    tail_vals: Vec<f64>,
    /// Position (into `tail_vals`) of each tail row's diagonal entry.
    tail_diag: Vec<u32>,
}

impl StencilOperator {
    /// Extracts the coefficient planes from a structured CSR matrix with
    /// `nl` grid layers of `nx x ny` cells (plus optional tail rows).
    ///
    /// Returns `None` if the matrix does not have exactly the expected
    /// 7-point structure: any missing geometric neighbor, any
    /// off-stencil coupling between grid nodes, or a dimension mismatch.
    #[must_use]
    pub fn from_csr(a: &CsrMatrix, nx: usize, ny: usize, nl: usize) -> Option<Self> {
        if nx == 0 || ny == 0 || nl == 0 {
            return None;
        }
        let cells = nx.checked_mul(ny)?;
        let grid_nodes = nl.checked_mul(cells)?;
        if a.n() < grid_nodes {
            return None;
        }
        let n = a.n();

        let mut up = vec![0.0; grid_nodes];
        let mut south = vec![0.0; grid_nodes];
        let mut west = vec![0.0; grid_nodes];
        let mut diag = vec![0.0; grid_nodes];
        let mut east = vec![0.0; grid_nodes];
        let mut north = vec![0.0; grid_nodes];
        let mut down = vec![0.0; grid_nodes];
        let mut rim_ptr = Vec::with_capacity(grid_nodes + 1);
        rim_ptr.push(0u32);
        let mut rim_cols: Vec<u32> = Vec::new();
        let mut rim_vals: Vec<f64> = Vec::new();

        for i in 0..grid_nodes {
            let l = i / cells;
            let cell = i % cells;
            let iy = cell / nx;
            let ix = cell % nx;
            let (cols, vals) = a.row(i);
            let mut k = 0usize;
            // Consume the next CSR entry, which must sit at column
            // `col`; anything else means the row is not stencil-shaped.
            macro_rules! take {
                ($col:expr) => {{
                    if k >= cols.len() || cols[k] as usize != $col {
                        return None;
                    }
                    let v = vals[k];
                    k += 1;
                    v
                }};
            }
            if l > 0 {
                up[i] = take!(i - cells);
            }
            if iy > 0 {
                south[i] = take!(i - nx);
            }
            if ix > 0 {
                west[i] = take!(i - 1);
            }
            diag[i] = take!(i);
            if ix + 1 < nx {
                east[i] = take!(i + 1);
            }
            if iy + 1 < ny {
                north[i] = take!(i + nx);
            }
            if l + 1 < nl {
                down[i] = take!(i + cells);
            }
            // Whatever remains must couple to tail nodes (columns past
            // the structured block, already ascending).
            for e in k..cols.len() {
                if (cols[e] as usize) < grid_nodes {
                    return None;
                }
                rim_cols.push(cols[e]);
                rim_vals.push(vals[e]);
            }
            rim_ptr.push(u32::try_from(rim_cols.len()).ok()?);
        }

        let n_tail = n - grid_nodes;
        let mut tail_ptr = Vec::with_capacity(n_tail + 1);
        tail_ptr.push(0u32);
        let mut tail_cols: Vec<u32> = Vec::new();
        let mut tail_vals: Vec<f64> = Vec::new();
        let mut tail_diag = Vec::with_capacity(n_tail);
        for t in 0..n_tail {
            let i = grid_nodes + t;
            let (cols, vals) = a.row(i);
            tail_diag.push(u32::try_from(tail_vals.len() + a.diag_pos(i)).ok()?);
            tail_cols.extend_from_slice(cols);
            tail_vals.extend_from_slice(vals);
            tail_ptr.push(u32::try_from(tail_vals.len()).ok()?);
        }

        Some(StencilOperator {
            nx,
            ny,
            nl,
            cells,
            n,
            up,
            south,
            west,
            diag,
            east,
            north,
            down,
            rim_ptr,
            rim_cols,
            rim_vals,
            tail_ptr,
            tail_cols,
            tail_vals,
            tail_diag,
        })
    }

    /// Matrix dimension (grid nodes + tail nodes).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cells along x.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of structured grid layers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.nl
    }

    /// Number of structured nodes (`nl * nx * ny`).
    #[must_use]
    pub fn grid_nodes(&self) -> usize {
        self.nl * self.cells
    }

    /// A clone with `patch[i]` added to each diagonal coefficient — the
    /// backward-Euler operator `A + C/dt`, mirroring
    /// [`CsrMatrix::with_diagonal_added`].
    ///
    /// # Panics
    ///
    /// Panics if `patch` has the wrong length.
    #[must_use]
    pub fn with_diagonal_added(&self, patch: &[f64]) -> Self {
        assert_eq!(patch.len(), self.n, "diagonal patch length mismatch");
        let mut out = self.clone();
        let grid_nodes = self.grid_nodes();
        for (d, p) in out.diag.iter_mut().zip(&patch[..grid_nodes]) {
            *d += p;
        }
        for (t, &pos) in self.tail_diag.iter().enumerate() {
            out.tail_vals[pos as usize] += patch[grid_nodes + t];
        }
        out
    }

    /// Folds one span of cells on a single x-line, all sharing the same
    /// neighbor-presence flags. Terms fold in ascending-column order —
    /// exactly the CSR row order — so the result is bit-identical to
    /// [`CsrMatrix::matvec_serial`].
    #[inline]
    fn sweep_span(
        &self,
        i0: usize,
        west: bool,
        east: bool,
        fl: LineFlags,
        x: &[f64],
        y: &mut [f64],
    ) {
        let cells = self.cells;
        let nx = self.nx;
        for (k, yi) in y.iter_mut().enumerate() {
            let i = i0 + k;
            let mut acc = 0.0;
            if fl.up {
                acc += self.up[i] * x[i - cells];
            }
            if fl.south {
                acc += self.south[i] * x[i - nx];
            }
            if west {
                acc += self.west[i] * x[i - 1];
            }
            acc += self.diag[i] * x[i];
            if east {
                acc += self.east[i] * x[i + 1];
            }
            if fl.north {
                acc += self.north[i] * x[i + nx];
            }
            if fl.down {
                acc += self.down[i] * x[i + cells];
            }
            let lo = self.rim_ptr[i] as usize;
            let hi = self.rim_ptr[i + 1] as usize;
            for e in lo..hi {
                acc += self.rim_vals[e] * x[self.rim_cols[e] as usize];
            }
            *yi = acc;
        }
    }

    /// `y[rows] = (A x)[rows]` for a contiguous range of *structured*
    /// rows starting at `lo`, swept x-line by x-line with the west/east
    /// boundary cells split off so the interior span carries no
    /// per-cell branches.
    fn stencil_rows(&self, lo: usize, x: &[f64], y: &mut [f64]) {
        let nx = self.nx;
        let hi = lo + y.len();
        let mut i = lo;
        while i < hi {
            let cell = i % self.cells;
            let l = i / self.cells;
            let iy = cell / nx;
            let ix = cell % nx;
            // This segment: from ix to the end of the line or range.
            let len = (nx - ix).min(hi - i);
            let fl = LineFlags {
                up: l > 0,
                south: iy > 0,
                north: iy + 1 < self.ny,
                down: l + 1 < self.nl,
            };
            let out = &mut y[i - lo..i - lo + len];
            if nx == 1 {
                self.sweep_span(i, false, false, fl, x, out);
            } else {
                if ix == 0 {
                    self.sweep_span(i, false, true, fl, x, &mut out[..1]);
                }
                let int_lo = ix.max(1) - ix;
                let int_hi = (ix + len).min(nx - 1) - ix;
                if int_hi > int_lo {
                    self.sweep_span(i + int_lo, true, true, fl, x, &mut out[int_lo..int_hi]);
                }
                if ix + len == nx {
                    self.sweep_span(i + len - 1, true, false, fl, x, &mut out[len - 1..]);
                }
            }
            i += len;
        }
    }

    /// `y[rows] = (A x)[rows]` for tail rows `t0..t0 + y.len()`
    /// (indices relative to the first tail row).
    fn tail_rows(&self, t0: usize, x: &[f64], y: &mut [f64]) {
        for (dt, yi) in y.iter_mut().enumerate() {
            let t = t0 + dt;
            let lo = self.tail_ptr[t] as usize;
            let hi = self.tail_ptr[t + 1] as usize;
            let mut acc = 0.0;
            for e in lo..hi {
                acc += self.tail_vals[e] * x[self.tail_cols[e] as usize];
            }
            *yi = acc;
        }
    }

    /// `y[rows] = (A x)[rows]` for any contiguous row range, splitting
    /// at the structured/tail boundary.
    fn matvec_range(&self, lo: usize, x: &[f64], y: &mut [f64]) {
        let grid_nodes = self.grid_nodes();
        let hi = lo + y.len();
        if lo < grid_nodes {
            let split = hi.min(grid_nodes) - lo;
            let (grid_part, tail_part) = y.split_at_mut(split);
            self.stencil_rows(lo, x, grid_part);
            if hi > grid_nodes {
                self.tail_rows(0, x, tail_part);
            }
        } else {
            self.tail_rows(lo - grid_nodes, x, y);
        }
    }

    /// `y = A x`, single-threaded.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slice lengths.
    pub fn matvec_serial(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        self.matvec_range(0, x, y);
    }

    /// `y = A x`, row-chunked across the rayon pool on the same
    /// `ROW_CHUNK` partition as [`CsrMatrix::matvec_parallel`]; bitwise
    /// identical to [`StencilOperator::matvec_serial`].
    pub fn matvec_parallel(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        scope(|s| {
            for (k, chunk) in y.chunks_mut(ROW_CHUNK).enumerate() {
                s.spawn(move |_| {
                    self.matvec_range(k * ROW_CHUNK, x, chunk);
                });
            }
        });
    }

    /// `y = A x`, picking the parallel path under the same
    /// [`PAR_MIN_ROWS`] gate as [`CsrMatrix::matvec`].
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        if self.n >= PAR_MIN_ROWS && current_num_threads() > 1 {
            self.matvec_parallel(x, y);
        } else {
            self.matvec_serial(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a structured 7-point CSR matrix over `nl` layers of
    /// `nx x ny` cells with `n_tail` extra rim nodes: lateral
    /// conductance varies per edge, verticals per cell, and edge cells
    /// of the top layer couple to the tail nodes.
    fn structured(nx: usize, ny: usize, nl: usize, n_tail: usize) -> CsrMatrix {
        let cells = nx * ny;
        let n = nl * cells + n_tail;
        let mut nbrs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut g = 0.37;
        let mut next_g = || {
            g = (g * 1.618 + 0.21) % 2.0 + 0.05;
            g
        };
        let link = |nbrs: &mut Vec<Vec<(u32, f64)>>, i: usize, j: usize, g: f64| {
            nbrs[i].push((j as u32, g));
            nbrs[j].push((i as u32, g));
        };
        for l in 0..nl {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = l * cells + iy * nx + ix;
                    if ix + 1 < nx {
                        let w = next_g();
                        link(&mut nbrs, i, i + 1, w);
                    }
                    if iy + 1 < ny {
                        let w = next_g();
                        link(&mut nbrs, i, i + nx, w);
                    }
                    if l + 1 < nl {
                        let w = next_g();
                        link(&mut nbrs, i, i + cells, w);
                    }
                }
            }
        }
        // Rim: edge cells of the top layer couple to tail node
        // `(ix + iy) % n_tail`; tail nodes form a ring.
        if n_tail > 0 {
            for iy in 0..ny {
                for ix in 0..nx {
                    if ix != 0 && iy != 0 && ix + 1 != nx && iy + 1 != ny {
                        continue;
                    }
                    let i = iy * nx + ix;
                    let t = nl * cells + (ix + iy) % n_tail;
                    let w = next_g();
                    link(&mut nbrs, i, t, w);
                }
            }
            for t in 0..n_tail.saturating_sub(1) {
                let w = next_g();
                link(&mut nbrs, nl * cells + t, nl * cells + t + 1, w);
            }
        }
        let mut diagonal = vec![0.01; n];
        for (i, row) in nbrs.iter().enumerate() {
            let mut s = 0.01;
            for &(_, g) in row {
                s += g;
            }
            diagonal[i] = s;
        }
        CsrMatrix::from_adjacency(&nbrs, &diagonal)
    }

    fn probe(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.713).sin() + 1.5).collect()
    }

    #[test]
    fn extraction_round_trips_bitwise() {
        for &(nx, ny, nl, tail) in &[(5, 4, 3, 12), (1, 6, 2, 4), (7, 1, 2, 0), (1, 1, 4, 3)] {
            let a = structured(nx, ny, nl, tail);
            let s = StencilOperator::from_csr(&a, nx, ny, nl).expect("structured");
            assert_eq!(s.n(), a.n());
            let x = probe(a.n());
            let mut yc = vec![0.0; a.n()];
            let mut ys = vec![1.0; a.n()];
            a.matvec_serial(&x, &mut yc);
            s.matvec_serial(&x, &mut ys);
            for (i, (c, st)) in yc.iter().zip(&ys).enumerate() {
                assert_eq!(
                    c.to_bits(),
                    st.to_bits(),
                    "({nx}x{ny}x{nl}+{tail}) row {i}: {c} vs {st}"
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_is_bitwise_serial() {
        // Enough rows to span several ROW_CHUNK boundaries.
        let (nx, ny, nl, tail) = (64, 33, 5, 12);
        let a = structured(nx, ny, nl, tail);
        let s = StencilOperator::from_csr(&a, nx, ny, nl).expect("structured");
        assert!(s.n() > 2 * ROW_CHUNK);
        let x = probe(s.n());
        let mut ys = vec![0.0; s.n()];
        let mut yp = vec![1.0; s.n()];
        s.matvec_serial(&x, &mut ys);
        s.matvec_parallel(&x, &mut yp);
        assert!(ys.iter().zip(&yp).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn diagonal_patch_matches_csr_patch_bitwise() {
        let (nx, ny, nl, tail) = (6, 5, 3, 12);
        let a = structured(nx, ny, nl, tail);
        let s = StencilOperator::from_csr(&a, nx, ny, nl).expect("structured");
        let patch: Vec<f64> = (0..a.n()).map(|i| 0.3 + (i as f64) * 0.017).collect();
        let ap = a.with_diagonal_added(&patch);
        let sp = s.with_diagonal_added(&patch);
        let x = probe(a.n());
        let mut yc = vec![0.0; a.n()];
        let mut ys = vec![0.0; a.n()];
        ap.matvec_serial(&x, &mut yc);
        sp.matvec_serial(&x, &mut ys);
        assert!(yc.iter().zip(&ys).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn non_structured_matrix_is_rejected() {
        // A 1D chain is not a 2x2xN stencil.
        let mut nbrs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); 8];
        for i in 0..7usize {
            nbrs[i].push((i as u32 + 1, 1.0));
            nbrs[i + 1].push((i as u32, 1.0));
        }
        let a = CsrMatrix::from_adjacency(&nbrs, &[2.1; 8]);
        assert!(StencilOperator::from_csr(&a, 2, 2, 2).is_none());
        // Dimension mismatch.
        let b = structured(3, 3, 2, 0);
        assert!(StencilOperator::from_csr(&b, 3, 3, 3).is_none());
        // Off-stencil diagonal coupling between grid nodes.
        let mut nbrs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); 9];
        for (i, j) in [(0usize, 1usize), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8)] {
            nbrs[i].push((j as u32, 1.0));
            nbrs[j].push((i as u32, 1.0));
        }
        for (i, j) in [(0usize, 3usize), (1, 4), (2, 5), (3, 6), (4, 7), (5, 8)] {
            nbrs[i].push((j as u32, 1.0));
            nbrs[j].push((i as u32, 1.0));
        }
        nbrs[0].push((4, 0.5)); // diagonal edge breaks the stencil
        nbrs[4].push((0, 0.5));
        let c = CsrMatrix::from_adjacency(&nbrs, &[5.0; 9]);
        assert!(StencilOperator::from_csr(&c, 3, 3, 1).is_none());
    }
}
