//! Temperature fields: solver output with layer/block/hotspot queries.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::grid::GridSpec;
use crate::model::ThermalModel;
use crate::solve::{RecoveryReport, SolveStats};
use crate::units::Celsius;

/// Temperatures (deg C) for every node of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureField {
    grid: GridSpec,
    n_user_layers: usize,
    /// Node offset of user layer 0.
    user_offset: usize,
    ambient: f64,
    temps: Vec<f64>,
    stats: SolveStats,
    recovery: RecoveryReport,
}

impl TemperatureField {
    pub(crate) fn new(
        model: &ThermalModel,
        temps: Vec<f64>,
        stats: SolveStats,
        recovery: RecoveryReport,
    ) -> Self {
        TemperatureField {
            grid: model.grid(),
            n_user_layers: model.n_user_layers(),
            user_offset: 3 * model.grid_cells(),
            ambient: model.ambient().get(),
            temps,
            stats,
            recovery,
        }
    }

    /// A field at a uniform temperature — the usual transient initial
    /// condition.
    pub fn uniform(model: &ThermalModel, temperature: Celsius) -> Self {
        TemperatureField {
            grid: model.grid(),
            n_user_layers: model.n_user_layers(),
            user_offset: 3 * model.grid_cells(),
            ambient: model.ambient().get(),
            temps: vec![temperature.get(); model.node_count()],
            stats: SolveStats::default(),
            recovery: RecoveryReport::default(),
        }
    }

    /// Rebuilds a field from raw node temperatures — the checkpoint/resume
    /// restore path. Rejects a vector whose length does not match the
    /// model's node count, and any non-finite entry.
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerMapMismatch`] on a length mismatch;
    /// [`ThermalError::NonFiniteTemperature`] if any entry is NaN or ∞.
    pub fn from_raw(model: &ThermalModel, temps: Vec<f64>) -> Result<Self, ThermalError> {
        if temps.len() != model.node_count() {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: temps.len(),
                model_nodes: model.node_count(),
            });
        }
        if let Some(node) = temps.iter().position(|t| !t.is_finite()) {
            return Err(ThermalError::NonFiniteTemperature { node });
        }
        Ok(TemperatureField::new(
            model,
            temps,
            SolveStats::default(),
            RecoveryReport::default(),
        ))
    }

    /// Solver degraded-mode recovery report for the solve(s) that produced
    /// this field. Empty when every solve converged on the configured
    /// preconditioner.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// All node temperatures (solver ordering).
    pub fn raw(&self) -> &[f64] {
        &self.temps
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.temps.len()
    }

    /// Ambient temperature used by the solve.
    pub fn ambient(&self) -> Celsius {
        Celsius::new(self.ambient)
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Number of user layers.
    pub fn n_user_layers(&self) -> usize {
        self.n_user_layers
    }

    /// Temperatures of user layer `layer`, cell-ordered.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_slice(&self, layer: usize) -> &[f64] {
        assert!(layer < self.n_user_layers, "layer {layer} out of range");
        let c = self.grid.cells();
        let base = self.user_offset + layer * c;
        &self.temps[base..base + c]
    }

    /// Temperature of a single cell of a user layer.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, layer: usize, ix: usize, iy: usize) -> Celsius {
        Celsius::new(self.layer_slice(layer)[self.grid.index(ix, iy)])
    }

    /// Hottest cell of a user layer: `((ix, iy), temperature)`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn hotspot_of_layer(&self, layer: usize) -> ((usize, usize), Celsius) {
        let s = self.layer_slice(layer);
        let (mut best_i, mut best_t) = (0, f64::NEG_INFINITY);
        for (i, &t) in s.iter().enumerate() {
            if t > best_t {
                best_t = t;
                best_i = i;
            }
        }
        (self.grid.coords(best_i), Celsius::new(best_t))
    }

    /// Maximum temperature of a user layer.
    pub fn max_of_layer(&self, layer: usize) -> Celsius {
        self.hotspot_of_layer(layer).1
    }

    /// Area-weighted mean temperature of a user layer (cells have
    /// equal area, so this is the plain mean).
    pub fn mean_of_layer(&self, layer: usize) -> Celsius {
        let s = self.layer_slice(layer);
        Celsius::new(s.iter().sum::<f64>() / s.len() as f64)
    }

    /// Hottest cell across all user layers: `(layer, (ix, iy), temperature)`.
    pub fn global_hotspot(&self) -> (usize, (usize, usize), Celsius) {
        let mut best = (0, (0, 0), Celsius::new(self.ambient));
        let mut found = false;
        for l in 0..self.n_user_layers {
            let ((ix, iy), t) = self.hotspot_of_layer(l);
            if !found || t > best.2 {
                best = (l, (ix, iy), t);
                found = true;
            }
        }
        best
    }

    /// Maximum temperature over the cells of a named block (weights from
    /// the model's rasterization; cells with any block coverage count).
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalModel::block_weights`] errors.
    pub fn block_max(
        &self,
        model: &ThermalModel,
        layer: usize,
        block: &str,
    ) -> Result<Celsius, ThermalError> {
        let weights = model.block_weights(layer, block)?;
        let s = self.layer_slice(layer);
        Ok(Celsius::new(
            weights
                .iter()
                .map(|&(c, _)| s[c])
                .fold(f64::NEG_INFINITY, f64::max),
        ))
    }

    /// Area-weighted mean temperature of a named block.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalModel::block_weights`] errors.
    pub fn block_mean(
        &self,
        model: &ThermalModel,
        layer: usize,
        block: &str,
    ) -> Result<Celsius, ThermalError> {
        let weights = model.block_weights(layer, block)?;
        let s = self.layer_slice(layer);
        let mut acc = 0.0;
        let mut tot = 0.0;
        for &(c, w) in weights {
            acc += s[c] * w;
            tot += w;
        }
        Ok(Celsius::new(acc / tot.max(1e-30)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::material::SILICON;
    use crate::power::PowerMap;
    use crate::stack::Stack;
    use crate::units::Watts;

    fn model() -> ThermalModel {
        let die = 8e-3;
        let stack = Stack::builder(die, die)
            .layer(Layer::uniform("a", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("b", 100e-6, SILICON.clone()))
            .build()
            .unwrap();
        stack.discretize(GridSpec::new(8, 8)).unwrap()
    }

    #[test]
    fn uniform_field_queries() {
        let m = model();
        let t = TemperatureField::uniform(&m, Celsius::new(50.0));
        assert_eq!(t.max_of_layer(0), 50.0);
        assert_eq!(t.mean_of_layer(1), 50.0);
        assert_eq!(t.cell(0, 3, 3), 50.0);
        assert_eq!(t.global_hotspot().2, 50.0);
    }

    #[test]
    fn hotspot_tracks_power_location() {
        let m = model();
        let mut p = PowerMap::zeros(&m);
        p.add_cell_power(1, 6, 2, Watts::new(5.0));
        let t = m.steady_state(&p).unwrap();
        let ((ix, iy), _) = t.hotspot_of_layer(1);
        assert_eq!((ix, iy), (6, 2));
        // The layer above is cooler at its hotspot than the source layer.
        assert!(t.max_of_layer(0) < t.max_of_layer(1));
    }

    #[test]
    fn mean_below_max() {
        let m = model();
        let mut p = PowerMap::zeros(&m);
        p.add_cell_power(1, 4, 4, Watts::new(3.0));
        let t = m.steady_state(&p).unwrap();
        assert!(t.mean_of_layer(1) < t.max_of_layer(1));
        assert!(t.mean_of_layer(1) > t.ambient());
    }
}
