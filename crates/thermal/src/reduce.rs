//! Deterministic floating-point reductions: the canonical home of every
//! fold whose order must not depend on thread count.
//!
//! All kernels work in fixed chunks of [`ROW_CHUNK`] elements: serial
//! accumulation *within* a chunk, a fixed pairwise tree *across* chunk
//! partials. The reduction order therefore depends only on the input
//! length, never on how many workers picked up chunks, which is what
//! makes solver results bit-identical across `RAYON_NUM_THREADS`
//! settings (locked by the `thread-determinism` digest test).
//!
//! `xylem-lint`'s `no-raw-accumulation` rule bans bare `+=`/`.sum()`
//! folds over `f64` data in every other hot-path module and points here;
//! this file is the one exemption, because the chunk-serial loops below
//! *are* the deterministic pattern. [`pairwise_sum`] and
//! [`pairwise_dot`] are the general-purpose entry points; the fused CG
//! kernels stay crate-private.

use crate::csr::ROW_CHUNK;

/// Fixed pairwise tree fold over chunk partials. The reduction order
/// depends only on the number of chunks, never on the thread count.
/// Consumes `p` as scratch (partial sums overwrite the front).
pub fn reduce_pairwise(p: &mut [f64]) -> f64 {
    let mut len = p.len();
    if len == 0 {
        return 0.0;
    }
    while len > 1 {
        let half = len.div_ceil(2);
        for i in 0..len / 2 {
            p[i] = p[2 * i] + p[2 * i + 1];
        }
        if len % 2 == 1 {
            p[half - 1] = p[len - 1];
        }
        len = half;
    }
    p[0]
}

/// Deterministic sum of a slice: serial within [`ROW_CHUNK`]-sized
/// chunks, pairwise fold across them. Allocates its own partial buffer —
/// meant for assembly/reporting paths, not per-iteration solver inner
/// loops (those pass a workspace to [`dot_chunked`]).
#[must_use]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    let mut partials: Vec<f64> = xs.chunks(ROW_CHUNK).map(chunk_sum).collect();
    reduce_pairwise(&mut partials)
}

/// Deterministic dot product of two slices (zipped to the shorter
/// length), chunked like [`pairwise_sum`].
#[must_use]
pub fn pairwise_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut partials: Vec<f64> = a
        .chunks(ROW_CHUNK)
        .zip(b.chunks(ROW_CHUNK))
        .map(|(ca, cb)| chunk_dot(ca, cb))
        .collect();
    reduce_pairwise(&mut partials)
}

/// Deterministic chunked dot product: serial accumulation within
/// [`ROW_CHUNK`]-sized chunks, pairwise fold across them. `partials`
/// must hold `len.div_ceil(ROW_CHUNK)` slots (workspace-provided so the
/// CG inner loop never allocates).
pub(crate) fn dot_chunked(a: &[f64], b: &[f64], partials: &mut [f64], par: bool) -> f64 {
    if par {
        rayon::scope(|s| {
            for ((pk, ca), cb) in partials
                .iter_mut()
                .zip(a.chunks(ROW_CHUNK))
                .zip(b.chunks(ROW_CHUNK))
            {
                s.spawn(move |_| {
                    *pk = chunk_dot(ca, cb);
                });
            }
        });
    } else {
        for ((pk, ca), cb) in partials
            .iter_mut()
            .zip(a.chunks(ROW_CHUNK))
            .zip(b.chunks(ROW_CHUNK))
        {
            *pk = chunk_dot(ca, cb);
        }
    }
    reduce_pairwise(partials)
}

#[inline]
fn chunk_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

#[inline]
pub(crate) fn chunk_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Fused CG update: `x += alpha p`, `r -= alpha ap`, returning the new
/// `||r||^2` as a by-product of the same pass (no separate `dot(r, r)`
/// sweep). Chunked like every other reduction, so serial and parallel
/// agree bitwise.
pub(crate) fn fused_xr_update(
    x: &mut [f64],
    r: &mut [f64],
    p: &[f64],
    ap: &[f64],
    alpha: f64,
    partials: &mut [f64],
    par: bool,
) -> f64 {
    let run = |k: usize, xc: &mut [f64], rc: &mut [f64]| -> f64 {
        let base = k * ROW_CHUNK;
        let pc = &p[base..base + xc.len()];
        let apc = &ap[base..base + xc.len()];
        let mut acc = 0.0;
        for ((xi, ri), (pi, api)) in xc.iter_mut().zip(rc.iter_mut()).zip(pc.iter().zip(apc)) {
            *xi += alpha * pi;
            *ri -= alpha * api;
            acc += *ri * *ri;
        }
        acc
    };
    if par {
        rayon::scope(|s| {
            for ((k, (xc, rc)), pk) in x
                .chunks_mut(ROW_CHUNK)
                .zip(r.chunks_mut(ROW_CHUNK))
                .enumerate()
                .zip(partials.iter_mut())
            {
                s.spawn(move |_| {
                    *pk = run(k, xc, rc);
                });
            }
        });
    } else {
        for ((k, (xc, rc)), pk) in x
            .chunks_mut(ROW_CHUNK)
            .zip(r.chunks_mut(ROW_CHUNK))
            .enumerate()
            .zip(partials.iter_mut())
        {
            *pk = run(k, xc, rc);
        }
    }
    reduce_pairwise(partials)
}

/// `p = z + beta p`, chunk-parallel.
pub(crate) fn fused_p_update(p: &mut [f64], z: &[f64], beta: f64, par: bool) {
    let run = |k: usize, pc: &mut [f64]| {
        let zc = &z[k * ROW_CHUNK..k * ROW_CHUNK + pc.len()];
        for (pi, zi) in pc.iter_mut().zip(zc) {
            *pi = zi + beta * *pi;
        }
    };
    if par {
        rayon::scope(|s| {
            for (k, pc) in p.chunks_mut(ROW_CHUNK).enumerate() {
                s.spawn(move |_| run(k, pc));
            }
        });
    } else {
        for (k, pc) in p.chunks_mut(ROW_CHUNK).enumerate() {
            run(k, pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_sum_matches_naive_within_tolerance() {
        let xs: Vec<f64> = (0..3 * ROW_CHUNK + 211)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 * 1e-3 - 0.5)
            .collect();
        let naive: f64 = xs.iter().sum();
        let det = pairwise_sum(&xs);
        assert!((det - naive).abs() < 1e-9, "{det} vs {naive}");
    }

    #[test]
    fn pairwise_sum_is_length_stable() {
        // Same data, same result, every call — and splitting the input
        // differently from ROW_CHUNK would change the partials, so the
        // helper must agree with a hand-built chunk fold bitwise.
        let xs: Vec<f64> = (0..2 * ROW_CHUNK + 77).map(|i| (i as f64).sin()).collect();
        let mut partials: Vec<f64> = xs.chunks(ROW_CHUNK).map(chunk_sum).collect();
        assert_eq!(
            pairwise_sum(&xs).to_bits(),
            reduce_pairwise(&mut partials).to_bits()
        );
    }

    #[test]
    fn pairwise_dot_matches_workspace_dot_bitwise() {
        let n = 2 * ROW_CHUNK + 123;
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut partials = vec![0.0; n.div_ceil(ROW_CHUNK)];
        assert_eq!(
            pairwise_dot(&a, &b).to_bits(),
            dot_chunked(&a, &b, &mut partials, false).to_bits()
        );
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_dot(&[], &[]), 0.0);
        assert_eq!(pairwise_sum(&[2.5]), 2.5);
        assert_eq!(pairwise_dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(reduce_pairwise(&mut []), 0.0);
    }
}
