//! Flat compressed-sparse-row (CSR) storage for the RC conductance
//! matrix, plus the parallel matvec kernel the CG solver runs on.
//!
//! [`ThermalModel::build`](crate::model::ThermalModel::build) assembles
//! its node graph as an adjacency list (natural for edge insertion), then
//! lowers it once into a [`CsrMatrix`]: three flat arrays (`row_ptr`,
//! `col_idx`, `values`) that a matvec walks with zero pointer chasing —
//! one contiguous sweep instead of one heap hop per row. Columns within a
//! row are sorted ascending and the diagonal entry's position is cached
//! per row (`diag_idx`), which gives the triangular sweeps of the SSOR
//! and IC(0) preconditioners (see [`crate::solve`]) their split point for
//! free and makes the backward-Euler diagonal patch (`A + C/dt`) an O(n)
//! update of an existing clone rather than a re-assembly.
//!
//! Sign convention: entries are the actual matrix coefficients, i.e. the
//! off-diagonals hold `-G_ij` and the diagonal holds
//! `sum_j G_ij + G_ambient,i` (plus `C_i/dt` after a transient patch), so
//! `matvec` is a plain `y = A x`.

use rayon::{current_num_threads, scope};

/// Minimum matrix dimension before the parallel matvec path engages;
/// below this, thread handoff costs more than the row sweep saves.
pub const PAR_MIN_ROWS: usize = 16_384;

/// Rows per parallel work chunk. Also the boundary the deterministic
/// reductions in [`crate::solve`] use, so serial and parallel runs
/// partition work identically.
pub(crate) const ROW_CHUNK: usize = 4096;

/// Symmetric sparse matrix in CSR layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries; length `n+1`.
    row_ptr: Vec<u32>,
    /// Column of each entry, ascending within a row.
    col_idx: Vec<u32>,
    /// Coefficient of each entry.
    values: Vec<f64>,
    /// Position (into `values`) of each row's diagonal entry.
    diag_idx: Vec<u32>,
}

impl CsrMatrix {
    /// Lowers an adjacency list plus explicit diagonal into CSR form.
    ///
    /// `neighbors[i]` holds `(j, g)` pairs with the *conductance* `g > 0`
    /// of edge `i <-> j` (both endpoints listed, as the model stores
    /// them); the stored off-diagonal coefficient is `-g`. `diagonal[i]`
    /// is stored as-is.
    ///
    /// # Panics
    ///
    /// Panics if an adjacency row references a node out of range or
    /// contains a duplicate/self edge (debug builds).
    #[must_use]
    pub fn from_adjacency(neighbors: &[Vec<(u32, f64)>], diagonal: &[f64]) -> Self {
        let n = neighbors.len();
        assert_eq!(diagonal.len(), n, "diagonal length mismatch");
        let nnz: usize = neighbors.iter().map(|r| r.len() + 1).sum();
        assert!(nnz <= u32::MAX as usize, "matrix too large for u32 indices");

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut diag_idx = Vec::with_capacity(n);

        let mut row: Vec<(u32, f64)> = Vec::new();
        row_ptr.push(0u32);
        for (i, nbrs) in neighbors.iter().enumerate() {
            row.clear();
            row.extend(nbrs.iter().map(|&(j, g)| (j, -g)));
            row.push((i as u32, diagonal[i]));
            row.sort_unstable_by_key(|&(j, _)| j);
            debug_assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "duplicate or self edge in row {i}"
            );
            for &(j, v) in &row {
                debug_assert!((j as usize) < n, "column {j} out of range in row {i}");
                if j as usize == i {
                    diag_idx.push(col_idx.len() as u32);
                }
                col_idx.push(j);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        debug_assert_eq!(diag_idx.len(), n);

        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
            diag_idx,
        }
    }

    /// Builds an `n x n` matrix from `(row, col, value)` triplets (each
    /// coefficient given once, exactly as stored). Rows are sorted
    /// internally. Intended for small hand-written systems in tests.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a row lacks a diagonal
    /// entry.
    #[must_use]
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &(i, j, v) in triplets {
            assert!(i < n && j < n, "triplet ({i},{j}) out of range");
            rows[i].push((j as u32, v));
        }
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag_idx = Vec::new();
        for (i, row) in rows.iter_mut().enumerate() {
            row.sort_unstable_by_key(|&(j, _)| j);
            let mut has_diag = false;
            for &(j, v) in row.iter() {
                if j as usize == i {
                    diag_idx.push(col_idx.len() as u32);
                    has_diag = true;
                }
                col_idx.push(j);
                values.push(v);
            }
            assert!(has_diag, "row {i} has no diagonal entry");
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
            diag_idx,
        }
    }

    /// Builds an `n x n` matrix from `(row, col, value)` triplets,
    /// **summing** duplicate positions — the accumulation step of a
    /// Galerkin triple product `P^T A P` with piecewise-constant `P`
    /// (see [`crate::amg`]). Every row must end up with a diagonal
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a row lacks a diagonal
    /// entry.
    #[must_use]
    pub fn from_triplets_summed(n: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &(i, j, v) in triplets {
            assert!((i as usize) < n && (j as usize) < n, "triplet out of range");
            rows[i as usize].push((j, v));
        }
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag_idx = Vec::new();
        for (i, row) in rows.iter_mut().enumerate() {
            row.sort_unstable_by_key(|&(j, _)| j);
            let mut has_diag = false;
            let mut k = 0;
            while k < row.len() {
                let (j, mut v) = row[k];
                k += 1;
                while k < row.len() && row[k].0 == j {
                    v += row[k].1;
                    k += 1;
                }
                if j as usize == i {
                    diag_idx.push(col_idx.len() as u32);
                    has_diag = true;
                }
                col_idx.push(j);
                values.push(v);
            }
            assert!(has_diag, "row {i} has no diagonal entry");
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
            diag_idx,
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The diagonal coefficients, in row order.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        self.diag_idx
            .iter()
            .map(|&k| self.values[k as usize])
            .collect()
    }

    /// Entries of row `i` as `(columns, values)` slices.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Index (within row `i`'s slices) of the diagonal entry.
    #[inline]
    #[must_use]
    pub fn diag_pos(&self, i: usize) -> usize {
        self.diag_idx[i] as usize - self.row_ptr[i] as usize
    }

    /// A clone with `patch[i]` added to each diagonal entry — the
    /// backward-Euler operator `A + C/dt` when `patch = C/dt`. The
    /// sparsity arrays are shared clones; only `values` differs.
    ///
    /// # Panics
    ///
    /// Panics if `patch` has the wrong length.
    #[must_use]
    pub fn with_diagonal_added(&self, patch: &[f64]) -> Self {
        assert_eq!(patch.len(), self.n, "diagonal patch length mismatch");
        let mut out = self.clone();
        for (i, &k) in self.diag_idx.iter().enumerate() {
            out.values[k as usize] += patch[i];
        }
        out
    }

    /// `y[rows] = (A x)[rows]` for one contiguous row range.
    #[inline]
    fn matvec_rows(&self, lo: usize, x: &[f64], y: &mut [f64]) {
        for (di, yi) in y.iter_mut().enumerate() {
            let i = lo + di;
            let start = self.row_ptr[i] as usize;
            let end = self.row_ptr[i + 1] as usize;
            let mut acc = 0.0;
            for k in start..end {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        }
    }

    /// `y = A x`, single-threaded.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slice lengths.
    pub fn matvec_serial(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        self.matvec_rows(0, x, y);
    }

    /// `y = A x`, row-chunked across the rayon pool. Produces bitwise
    /// the same `y` as [`CsrMatrix::matvec_serial`]: each row's
    /// accumulation is independent, so the thread count never changes
    /// any sum's order.
    pub fn matvec_parallel(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        scope(|s| {
            for (k, chunk) in y.chunks_mut(ROW_CHUNK).enumerate() {
                s.spawn(move |_| {
                    self.matvec_rows(k * ROW_CHUNK, x, chunk);
                });
            }
        });
    }

    /// `y = A x`, picking the parallel path when the matrix is large
    /// enough ([`PAR_MIN_ROWS`]) and the pool has more than one thread.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        if self.n >= PAR_MIN_ROWS && current_num_threads() > 1 {
            self.matvec_parallel(x, y);
        } else {
            self.matvec_serial(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 1D Laplacian `[-1 2 -1]` as an adjacency list + diagonal.
    fn chain(n: usize) -> (Vec<Vec<(u32, f64)>>, Vec<f64>) {
        let mut nbrs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n - 1 {
            nbrs[i].push(((i + 1) as u32, 1.0));
            nbrs[i + 1].push((i as u32, 1.0));
        }
        (nbrs, vec![2.0; n])
    }

    #[test]
    fn lowering_produces_sorted_rows_with_diagonal() {
        let (nbrs, diag) = chain(5);
        let a = CsrMatrix::from_adjacency(&nbrs, &diag);
        assert_eq!(a.n(), 5);
        assert_eq!(a.nnz(), 5 + 2 * 4);
        assert_eq!(a.diagonal(), vec![2.0; 5]);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[-1.0, 2.0, -1.0]);
        assert_eq!(a.diag_pos(2), 1);
        assert_eq!(a.diag_pos(0), 0);
    }

    #[test]
    fn matvec_matches_dense() {
        let (nbrs, diag) = chain(7);
        let a = CsrMatrix::from_adjacency(&nbrs, &diag);
        let x: Vec<f64> = (0..7).map(|i| (i as f64).sin() + 1.5).collect();
        let mut y = vec![0.0; 7];
        a.matvec_serial(&x, &mut y);
        for i in 0..7 {
            let mut want = 2.0 * x[i];
            if i > 0 {
                want -= x[i - 1];
            }
            if i + 1 < 7 {
                want -= x[i + 1];
            }
            assert!((y[i] - want).abs() < 1e-15, "row {i}: {} vs {want}", y[i]);
        }
    }

    #[test]
    fn parallel_matvec_is_bitwise_serial() {
        let n = 2 * ROW_CHUNK + 137; // force several chunks
        let (nbrs, diag) = chain(n);
        let a = CsrMatrix::from_adjacency(&nbrs, &diag);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut ys = vec![0.0; n];
        let mut yp = vec![1.0; n];
        a.matvec_serial(&x, &mut ys);
        a.matvec_parallel(&x, &mut yp);
        assert!(ys.iter().zip(&yp).all(|(s, p)| s.to_bits() == p.to_bits()));
    }

    #[test]
    fn diagonal_patch_only_touches_diagonal() {
        let (nbrs, diag) = chain(4);
        let a = CsrMatrix::from_adjacency(&nbrs, &diag);
        let patch = vec![0.5, 1.0, 1.5, 2.0];
        let b = a.with_diagonal_added(&patch);
        assert_eq!(b.diagonal(), vec![2.5, 3.0, 3.5, 4.0]);
        // Off-diagonals unchanged.
        let (_, va) = a.row(1);
        let (_, vb) = b.row(1);
        assert_eq!(va[0], vb[0]);
        assert_eq!(va[2], vb[2]);
    }

    #[test]
    fn from_triplets_round_trips() {
        let a = CsrMatrix::from_triplets(
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 2.0),
            ],
        );
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.matvec_serial(&x, &mut y);
        assert_eq!(y, vec![6.0, 10.0, 8.0]);
    }
}
