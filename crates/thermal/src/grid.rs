//! Grid discretization: rasterizing floorplans onto the solver grid.
//!
//! All layers of a stack share one [`GridSpec`] (`nx x ny` cells over the
//! die outline). Rasterization converts each [`Layer`]
//! into per-cell conductivity and heat-capacity arrays using area-weighted
//! blending (the rule of mixtures the paper uses for composite regions), and
//! computes, for every floorplan block, the fraction of the block's area
//! falling into each cell — the weights used to spread block power over
//! cells.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::floorplan::Rect;
use crate::layer::Layer;

/// Grid resolution shared by all layers of a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridSpec {
    nx: usize,
    ny: usize,
}

impl GridSpec {
    /// Creates a grid of `nx x ny` cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        GridSpec { nx, ny }
    }

    /// Cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total cells per layer.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Linear index of cell `(ix, iy)` (row-major, y-major rows).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of range.
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Inverse of [`GridSpec::index`].
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.nx, idx / self.nx)
    }

    /// Geometry of cell `(ix, iy)` on a `width x height` outline.
    pub fn cell_rect(&self, width: f64, height: f64, ix: usize, iy: usize) -> Rect {
        let dx = width / self.nx as f64;
        let dy = height / self.ny as f64;
        Rect::new(ix as f64 * dx, iy as f64 * dy, dx, dy)
    }

    /// Range of cell x-indices whose cells may intersect `[x0, x1]`.
    fn x_range(&self, width: f64, x0: f64, x1: f64) -> std::ops::Range<usize> {
        let dx = width / self.nx as f64;
        let lo = (x0 / dx).floor().max(0.0) as usize;
        let hi = ((x1 / dx).ceil() as usize).min(self.nx);
        lo.min(self.nx)..hi
    }

    /// Range of cell y-indices whose cells may intersect `[y0, y1]`.
    fn y_range(&self, height: f64, y0: f64, y1: f64) -> std::ops::Range<usize> {
        let dy = height / self.ny as f64;
        let lo = (y0 / dy).floor().max(0.0) as usize;
        let hi = ((y1 / dy).ceil() as usize).min(self.ny);
        lo.min(self.ny)..hi
    }
}

/// A layer rasterized onto the grid.
#[derive(Debug, Clone)]
pub struct RasterizedLayer {
    /// Per-cell thermal conductivity, W/(m*K).
    pub lambda: Vec<f64>,
    /// Per-cell volumetric heat capacity, J/(m^3*K).
    pub capacity: Vec<f64>,
    /// For every floorplan block `b`: list of `(cell index, fraction of the
    /// block's area inside that cell)`. Fractions of each block sum to ~1.
    pub block_weights: Vec<Vec<(usize, f64)>>,
}

/// Rasterizes one layer onto the grid for a die outline of
/// `width x height` meters.
///
/// # Errors
///
/// [`ThermalError::BadStack`] if the layer's floorplan outline disagrees
/// with the die outline by more than 0.1%.
pub fn rasterize(
    layer: &Layer,
    grid: GridSpec,
    width: f64,
    height: f64,
) -> Result<RasterizedLayer, ThermalError> {
    if let Some(fp) = layer.floorplan() {
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-30);
        if rel(fp.width(), width) > 1e-3 || rel(fp.height(), height) > 1e-3 {
            return Err(ThermalError::BadStack {
                reason: format!(
                    "layer '{}' floorplan outline {:.4}x{:.4} mm disagrees with stack outline {:.4}x{:.4} mm",
                    layer.name(),
                    fp.width() * 1e3,
                    fp.height() * 1e3,
                    width * 1e3,
                    height * 1e3
                ),
            });
        }
    }

    let n = grid.cells();
    let base = layer.base_material();
    let mut lambda = vec![base.conductivity().get(); n];
    let mut capacity = vec![base.volumetric_heat_capacity().get(); n];
    let cell_area = (width / grid.nx() as f64) * (height / grid.ny() as f64);

    let mut block_weights: Vec<Vec<(usize, f64)>> = Vec::new();

    if let Some(fp) = layer.floorplan() {
        // Pass 1: block material overrides, area-weighted against the base.
        for (bi, block) in fp.blocks().iter().enumerate() {
            let r = *block.rect();
            let mut weights = Vec::new();
            let block_area = r.area();
            for iy in grid.y_range(height, r.y(), r.y_max()) {
                for ix in grid.x_range(width, r.x(), r.x_max()) {
                    let cell = grid.cell_rect(width, height, ix, iy);
                    let inter = cell.intersection_area(&r);
                    if inter <= 0.0 {
                        continue;
                    }
                    let ci = grid.index(ix, iy);
                    if block_area > 0.0 {
                        weights.push((ci, inter / block_area));
                    }
                    if let Some(m) = layer.block_material(bi) {
                        let f = inter / cell_area;
                        lambda[ci] = lambda[ci] * (1.0 - f) + f * m.conductivity().get();
                        capacity[ci] =
                            capacity[ci] * (1.0 - f) + f * m.volumetric_heat_capacity().get();
                    }
                }
            }
            block_weights.push(weights);
        }
    }

    // Pass 2: patches, in order; later patches overwrite earlier blends.
    for patch in layer.patches() {
        let r = *patch.rect();
        let m = patch.material();
        for iy in grid.y_range(height, r.y(), r.y_max()) {
            for ix in grid.x_range(width, r.x(), r.x_max()) {
                let cell = grid.cell_rect(width, height, ix, iy);
                let inter = cell.intersection_area(&r);
                if inter <= 0.0 {
                    continue;
                }
                let ci = grid.index(ix, iy);
                let f = inter / cell_area;
                lambda[ci] = lambda[ci] * (1.0 - f) + f * m.conductivity().get();
                capacity[ci] = capacity[ci] * (1.0 - f) + f * m.volumetric_heat_capacity().get();
            }
        }
    }

    Ok(RasterizedLayer {
        lambda,
        capacity,
        block_weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::layer::MaterialPatch;
    use crate::material::{COPPER, SILICON};

    const W: f64 = 8e-3;
    const H: f64 = 8e-3;

    #[test]
    fn grid_indexing_roundtrip() {
        let g = GridSpec::new(7, 5);
        for iy in 0..5 {
            for ix in 0..7 {
                let i = g.index(ix, iy);
                assert_eq!(g.coords(i), (ix, iy));
            }
        }
        assert_eq!(g.cells(), 35);
    }

    #[test]
    fn cell_rects_tile_the_outline() {
        let g = GridSpec::new(4, 4);
        let total: f64 = (0..4)
            .flat_map(|iy| (0..4).map(move |ix| (ix, iy)))
            .map(|(ix, iy)| g.cell_rect(W, H, ix, iy).area())
            .sum();
        assert!((total - W * H).abs() / (W * H) < 1e-12);
    }

    #[test]
    fn uniform_layer_rasterizes_to_base() {
        let l = Layer::uniform("si", 100e-6, SILICON.clone());
        let r = rasterize(&l, GridSpec::new(8, 8), W, H).unwrap();
        assert!(r.lambda.iter().all(|&x| (x - 120.0).abs() < 1e-12));
        assert!(r.block_weights.is_empty());
    }

    #[test]
    fn half_copper_block_blends() {
        let mut fp = Floorplan::new(W, H);
        fp.add_block("cu", Rect::new(0.0, 0.0, W / 2.0, H)).unwrap();
        let mut l = Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp);
        l.set_block_material("cu", COPPER.clone()).unwrap();
        let g = GridSpec::new(8, 8);
        let r = rasterize(&l, g, W, H).unwrap();
        // Left half copper, right half silicon; block boundary on a cell edge.
        for iy in 0..8 {
            for ix in 0..8 {
                let got = r.lambda[g.index(ix, iy)];
                let want = if ix < 4 { 400.0 } else { 120.0 };
                assert!((got - want).abs() < 1e-9, "cell ({ix},{iy}) = {got}");
            }
        }
    }

    #[test]
    fn partial_cell_coverage_blends_by_area() {
        // Patch covering exactly a quarter of one 1x1-cell grid.
        let l0 = Layer::uniform("si", 100e-6, SILICON.clone());
        let mut l = l0;
        l.add_patch(MaterialPatch::new(
            "p",
            Rect::new(0.0, 0.0, W / 2.0, H / 2.0),
            COPPER.clone(),
        ))
        .unwrap();
        let r = rasterize(&l, GridSpec::new(1, 1), W, H).unwrap();
        let want = 0.25 * 400.0 + 0.75 * 120.0;
        assert!((r.lambda[0] - want).abs() < 1e-9, "{}", r.lambda[0]);
    }

    #[test]
    fn block_weights_sum_to_one() {
        let mut fp = Floorplan::new(W, H);
        // A block deliberately misaligned with the 8x8 grid.
        fp.add_block("b", Rect::new(1.1e-3, 0.7e-3, 3.3e-3, 2.9e-3))
            .unwrap();
        let l = Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp);
        let r = rasterize(&l, GridSpec::new(8, 8), W, H).unwrap();
        let sum: f64 = r.block_weights[0].iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn mismatched_outline_rejected() {
        let fp = Floorplan::new(W * 2.0, H);
        let l = Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp);
        assert!(rasterize(&l, GridSpec::new(4, 4), W, H).is_err());
    }
}
