//! Stacks: ordered layers under a package.
//!
//! A [`Stack`] owns the die outline, the [`Package`]
//! on top, and the layers in top-to-bottom order (the first layer touches
//! the TIM; the last is the farthest from the heat sink — the processor die
//! in the paper's memory-on-top organization).

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::grid::GridSpec;
use crate::layer::Layer;
use crate::model::ThermalModel;
use crate::package::Package;

/// An ordered stack of layers under a package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stack {
    width: f64,
    height: f64,
    package: Package,
    /// Top (TIM side) first.
    layers: Vec<Layer>,
}

impl Stack {
    /// Starts building a stack with the given die outline (meters).
    ///
    /// # Panics
    ///
    /// Panics if the outline is not strictly positive and finite.
    pub fn builder(width: f64, height: f64) -> StackBuilder {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "stack outline must be positive and finite"
        );
        StackBuilder {
            width,
            height,
            package: None,
            layers: Vec::new(),
        }
    }

    /// Die outline width, m.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die outline height, m.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The package.
    pub fn package(&self) -> &Package {
        &self.package
    }

    /// Layers, top (TIM side) to bottom.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers (never true for a built stack).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// A layer by index (0 = closest to the sink).
    ///
    /// # Errors
    ///
    /// [`ThermalError::IndexOutOfRange`] if out of range.
    pub fn layer(&self, index: usize) -> Result<&Layer, ThermalError> {
        self.layers.get(index).ok_or(ThermalError::IndexOutOfRange {
            what: "layer",
            index,
            len: self.layers.len(),
        })
    }

    /// Mutable access to a layer (e.g. to paint TTSV patches after
    /// construction).
    ///
    /// # Errors
    ///
    /// [`ThermalError::IndexOutOfRange`] if out of range.
    pub fn layer_mut(&mut self, index: usize) -> Result<&mut Layer, ThermalError> {
        let len = self.layers.len();
        self.layers
            .get_mut(index)
            .ok_or(ThermalError::IndexOutOfRange {
                what: "layer",
                index,
                len,
            })
    }

    /// Index of the first layer with the given name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name() == name)
    }

    /// Total thickness of all layers (excluding the package), m.
    pub fn total_thickness(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness()).sum()
    }

    /// Sum over layers of `t/lambda` using each layer's *base* material:
    /// the one-dimensional thermal resistance per unit area of the
    /// unmodified stack, m^2-K/W. This is the quantity the paper's Sec. 2.5
    /// analysis reasons about.
    pub fn vertical_rth_per_area(&self) -> f64 {
        self.layers.iter().map(|l| l.base_rth_per_area()).sum()
    }

    /// Discretizes the stack onto `grid`, producing a solvable
    /// [`ThermalModel`].
    ///
    /// # Errors
    ///
    /// Propagates rasterization and geometry errors.
    pub fn discretize(&self, grid: GridSpec) -> Result<ThermalModel, ThermalError> {
        ThermalModel::build(self, grid)
    }
}

/// Builder for [`Stack`].
#[derive(Debug)]
pub struct StackBuilder {
    width: f64,
    height: f64,
    package: Option<Package>,
    layers: Vec<Layer>,
}

impl StackBuilder {
    /// Sets the package.
    pub fn package(mut self, package: Package) -> StackBuilder {
        self.package = Some(package);
        self
    }

    /// Appends a layer below the previously added ones.
    pub fn layer(mut self, layer: Layer) -> StackBuilder {
        self.layers.push(layer);
        self
    }

    /// Appends many layers.
    pub fn layers(mut self, layers: impl IntoIterator<Item = Layer>) -> StackBuilder {
        self.layers.extend(layers);
        self
    }

    /// Finalizes the stack.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadStack`] if no layers were added or the die does
    /// not fit the package (a default package for the die outline is used
    /// when none was set).
    pub fn build(self) -> Result<Stack, ThermalError> {
        if self.layers.is_empty() {
            return Err(ThermalError::BadStack {
                reason: "stack has no layers".into(),
            });
        }
        let package = self
            .package
            .unwrap_or_else(|| Package::default_for_die(self.width, self.height));
        package.validate_die(self.width, self.height)?;
        Ok(Stack {
            width: self.width,
            height: self.height,
            package,
            layers: self.layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{D2D_AVERAGE, DRAM_METAL, PROC_METAL, SILICON};

    fn simple_stack() -> Stack {
        Stack::builder(8e-3, 8e-3)
            .layer(Layer::uniform("dram-si", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("dram-metal", 2e-6, DRAM_METAL.clone()))
            .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
            .layer(Layer::uniform("proc-si", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("proc-metal", 12e-6, PROC_METAL.clone()))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_ordered_layers() {
        let s = simple_stack();
        assert_eq!(s.len(), 5);
        assert_eq!(s.layer(0).unwrap().name(), "dram-si");
        assert_eq!(s.layer(4).unwrap().name(), "proc-metal");
        assert_eq!(s.layer_index("d2d"), Some(2));
        assert!(s.layer(5).is_err());
    }

    #[test]
    fn empty_stack_rejected() {
        assert!(Stack::builder(8e-3, 8e-3).build().is_err());
    }

    #[test]
    fn thickness_and_rth_sums() {
        let s = simple_stack();
        let t = s.total_thickness();
        assert!((t - 234e-6).abs() < 1e-12);
        // D2D dominates the 1-D resistance.
        let rth = s.vertical_rth_per_area() * 1e6; // mm^2-K/W
        let d2d = 20e-6 / 1.5 * 1e6;
        assert!(rth > d2d, "{rth} vs {d2d}");
        assert!(d2d / rth > 0.8, "D2D should dominate: {} of {}", d2d, rth);
    }

    #[test]
    fn default_package_applied() {
        let s = simple_stack();
        assert_eq!(s.package().spreader_side(), 3e-2);
    }
}
