//! Stack layers: a thickness, a base material, and optional heterogeneity.
//!
//! A [`Layer`] is one horizontal slice of the 3-D stack (e.g. "DRAM die 3
//! bulk silicon", "D2D layer 5", "TIM"). Heterogeneity comes from two
//! sources, applied in order during rasterization:
//!
//! 1. a [`Floorplan`] whose blocks may override the base material
//!    (e.g. the TSV bus region inside a silicon die), and
//! 2. a list of [`MaterialPatch`]es painted on top (e.g. individual TTSVs or
//!    shorted microbump sites, which overlay peripheral-logic blocks).

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::floorplan::{Floorplan, Rect};
use crate::material::Material;

/// A rectangular material override painted over a layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterialPatch {
    /// Geometry of the patch (die coordinates, meters).
    rect: Rect,
    /// Material inside the patch.
    material: Material,
    /// Label for debugging/reporting (e.g. `"ttsv-12"`).
    label: String,
}

impl MaterialPatch {
    /// Creates a patch.
    pub fn new(label: impl Into<String>, rect: Rect, material: Material) -> Self {
        MaterialPatch {
            rect,
            material,
            label: label.into(),
        }
    }

    /// Patch geometry.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// Patch material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Patch label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// One horizontal slice of the stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    /// Thickness in meters.
    thickness: f64,
    /// Material used where no block or patch overrides it.
    base: Material,
    /// Optional floorplan; required if per-block power is to be applied to
    /// this layer.
    floorplan: Option<Floorplan>,
    /// Per-block material overrides, parallel to `floorplan.blocks()`;
    /// `None` means the block uses the base material.
    block_materials: Vec<Option<Material>>,
    /// Patches applied after block materials (later patches win).
    patches: Vec<MaterialPatch>,
}

impl Layer {
    /// Creates a homogeneous layer of the given thickness (m) and material.
    ///
    /// # Panics
    ///
    /// Panics if `thickness` is not strictly positive and finite.
    pub fn uniform(name: impl Into<String>, thickness: f64, material: Material) -> Self {
        assert!(
            thickness.is_finite() && thickness > 0.0,
            "layer thickness must be positive and finite"
        );
        Layer {
            name: name.into(),
            thickness,
            base: material,
            floorplan: None,
            block_materials: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Attaches a floorplan. All blocks initially use the base material;
    /// override with [`Layer::set_block_material`].
    pub fn with_floorplan(mut self, floorplan: Floorplan) -> Self {
        self.block_materials = vec![None; floorplan.len()];
        self.floorplan = Some(floorplan);
        self
    }

    /// Overrides the material of a named floorplan block.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadFloorplan`] if the layer has no floorplan or the
    /// block name is unknown.
    pub fn set_block_material(
        &mut self,
        block_name: &str,
        material: Material,
    ) -> Result<(), ThermalError> {
        let fp = self.floorplan.as_ref().ok_or(ThermalError::BadFloorplan {
            reason: format!("layer '{}' has no floorplan", self.name),
        })?;
        let idx = fp
            .block_index(block_name)
            .ok_or_else(|| ThermalError::BadFloorplan {
                reason: format!("no block '{block_name}' in layer '{}'", self.name),
            })?;
        self.block_materials[idx] = Some(material);
        Ok(())
    }

    /// Paints a rectangular material patch over the layer. Patches are
    /// applied in insertion order after block materials.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadFloorplan`] if the patch escapes the die outline
    /// (only checked when a floorplan is attached).
    pub fn add_patch(&mut self, patch: MaterialPatch) -> Result<(), ThermalError> {
        if let Some(fp) = &self.floorplan {
            if !fp.outline().contains_rect(patch.rect()) {
                return Err(ThermalError::BadFloorplan {
                    reason: format!(
                        "patch '{}' escapes outline of layer '{}'",
                        patch.label(),
                        self.name
                    ),
                });
            }
        }
        self.patches.push(patch);
        Ok(())
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thickness (m).
    pub fn thickness(&self) -> f64 {
        self.thickness
    }

    /// Base material.
    pub fn base_material(&self) -> &Material {
        &self.base
    }

    /// The floorplan, if any.
    pub fn floorplan(&self) -> Option<&Floorplan> {
        self.floorplan.as_ref()
    }

    /// Material override of block `i`, if any.
    pub fn block_material(&self, i: usize) -> Option<&Material> {
        self.block_materials.get(i).and_then(|m| m.as_ref())
    }

    /// The patches, in application order.
    pub fn patches(&self) -> &[MaterialPatch] {
        &self.patches
    }

    /// Thermal resistance per unit area of the layer at a point covered only
    /// by the base material: `t / lambda` (m^2-K/W).
    pub fn base_rth_per_area(&self) -> f64 {
        self.base.rth_per_area(self.thickness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{COPPER, SILICON};

    fn fp_2blocks() -> Floorplan {
        let mut fp = Floorplan::new(1e-2, 1e-2);
        fp.add_block("left", Rect::new(0.0, 0.0, 5e-3, 1e-2))
            .unwrap();
        fp.add_block("right", Rect::new(5e-3, 0.0, 5e-3, 1e-2))
            .unwrap();
        fp
    }

    #[test]
    fn uniform_layer() {
        let l = Layer::uniform("si", 100e-6, SILICON.clone());
        assert_eq!(l.thickness(), 100e-6);
        assert!(l.floorplan().is_none());
        assert!((l.base_rth_per_area() * 1e6 - 0.8333).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "thickness")]
    fn zero_thickness_panics() {
        let _ = Layer::uniform("bad", 0.0, SILICON.clone());
    }

    #[test]
    fn block_material_override() {
        let mut l = Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp_2blocks());
        assert!(l.block_material(0).is_none());
        l.set_block_material("left", COPPER.clone()).unwrap();
        assert_eq!(l.block_material(0).unwrap().conductivity(), 400.0);
        assert!(l.set_block_material("nope", COPPER.clone()).is_err());
    }

    #[test]
    fn block_material_without_floorplan_errors() {
        let mut l = Layer::uniform("si", 100e-6, SILICON.clone());
        assert!(l.set_block_material("left", COPPER.clone()).is_err());
    }

    #[test]
    fn patch_containment_checked_with_floorplan() {
        let mut l = Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp_2blocks());
        let inside = MaterialPatch::new("p", Rect::new(1e-3, 1e-3, 1e-4, 1e-4), COPPER.clone());
        assert!(l.add_patch(inside).is_ok());
        let outside = MaterialPatch::new("q", Rect::new(9.99e-3, 0.0, 1e-3, 1e-3), COPPER.clone());
        assert!(l.add_patch(outside).is_err());
        assert_eq!(l.patches().len(), 1);
    }
}
