//! Property-based tests pinning the matrix-free stencil backend to the
//! CSR reference — bit-identically for the matvec, within solver
//! tolerance for GMG- vs AMG-preconditioned CG.

use proptest::prelude::*;

use xylem_thermal::grid::GridSpec;
use xylem_thermal::layer::Layer;
use xylem_thermal::material::{D2D_AVERAGE, SILICON};
use xylem_thermal::package::Package;
use xylem_thermal::power::PowerMap;
use xylem_thermal::solve::{PreconditionerKind, SolverOptions};
use xylem_thermal::stack::Stack;
use xylem_thermal::units::Watts;
use xylem_thermal::{SolverWorkspace, ThermalModel};

const DIE: f64 = 8e-3;

/// A stack with `n_layers` user layers alternating silicon and bonding
/// material, on an `nx x ny` grid — exercising non-square grids and
/// heterogeneous z-stacks of varying depth.
fn random_model(nx: usize, ny: usize, n_layers: usize, thick_scale: f64) -> ThermalModel {
    let mut b = Stack::builder(DIE, DIE).package(Package::default_for_die(DIE, DIE));
    for l in 0..n_layers {
        let (name, thick, mat) = if l % 2 == 0 {
            (format!("die{l}"), 100e-6 * thick_scale, SILICON.clone())
        } else {
            (format!("bond{l}"), 20e-6 * thick_scale, D2D_AVERAGE.clone())
        };
        b = b.layer(Layer::uniform(&name, thick, mat));
    }
    let stack = b.build().unwrap();
    stack.discretize(GridSpec::new(nx, ny)).unwrap()
}

/// A deterministic, sign-varying test vector (no RNG in the loop so a
/// failure reproduces from the proptest seed alone).
fn test_vector(n: usize, seed: f64) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    let mut s = seed;
    for i in 0..n {
        s = (s * 1.6180339887 + 0.7071067811) % 97.0;
        v.push(s - 48.5 + (i % 7) as f64);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The stencil sweep is the *same arithmetic* as the CSR matvec:
    /// every output must match bit for bit, on the raw conductance
    /// matrix and on a diagonal-patched (backward-Euler) clone alike.
    #[test]
    fn stencil_matvec_is_bitwise_the_csr_matvec(
        nx in 1usize..10,
        ny in 1usize..10,
        n_layers in 1usize..5,
        thick_scale in 0.5f64..2.0,
        seed in 0.0f64..97.0,
        dt_exp in -4i32..0,
    ) {
        let m = random_model(nx, ny, n_layers, thick_scale);
        let a = m.csr();
        let s = m.stencil().expect("built grids are always structured");
        prop_assert_eq!(s.n(), a.n());
        let x = test_vector(a.n(), seed);
        let mut y_csr = vec![0.0; a.n()];
        let mut y_st = vec![0.0; a.n()];
        a.matvec_serial(&x, &mut y_csr);
        s.matvec_serial(&x, &mut y_st);
        for (i, (c, st)) in y_csr.iter().zip(&y_st).enumerate() {
            prop_assert_eq!(c.to_bits(), st.to_bits(), "node {}: {} vs {}", i, c, st);
        }

        // Diagonal patch (the `+ C/dt` of backward Euler) must keep the
        // two backends bitwise aligned as well.
        let dt = 10f64.powi(dt_exp);
        let patch: Vec<f64> = (0..a.n()).map(|i| (i % 11 + 1) as f64 / dt).collect();
        let ap = a.with_diagonal_added(&patch);
        let sp = s.with_diagonal_added(&patch);
        ap.matvec_serial(&x, &mut y_csr);
        sp.matvec_serial(&x, &mut y_st);
        for (i, (c, st)) in y_csr.iter().zip(&y_st).enumerate() {
            prop_assert_eq!(c.to_bits(), st.to_bits(), "patched node {}: {} vs {}", i, c, st);
        }
    }

    /// GMG-preconditioned CG and the AMG path converge to the same
    /// temperatures within solver tolerance, cold-started from ambient
    /// and warm-started from the other path's solution.
    #[test]
    fn gmg_and_amg_solves_agree(
        nx in 6usize..12,
        ny in 6usize..12,
        n_layers in 2usize..4,
        lx in 0usize..12,
        ly in 0usize..12,
        watts in 2.0f64..20.0,
    ) {
        let mut m = random_model(nx, ny, n_layers, 1.0);
        let mut p = PowerMap::zeros(&m);
        p.add_cell_power(n_layers - 1, lx % nx, ly % ny, Watts::new(watts));
        p.add_uniform_layer_power(0, Watts::new(watts * 0.5));

        m.set_solver_options(SolverOptions {
            preconditioner: PreconditionerKind::Amg,
            ..*m.solver_options()
        });
        let amg = m.steady_state(&p).unwrap();

        m.set_solver_options(SolverOptions {
            preconditioner: PreconditionerKind::Gmg,
            ..*m.solver_options()
        });
        let gmg_cold = m.steady_state(&p).unwrap();
        let mut ws = SolverWorkspace::new();
        let gmg_warm = m.steady_state_from(&p, Some(&amg), &mut ws).unwrap();

        for (i, ((a, c), w)) in amg
            .raw()
            .iter()
            .zip(gmg_cold.raw())
            .zip(gmg_warm.raw())
            .enumerate()
        {
            prop_assert!((a - c).abs() < 1e-6, "cold node {}: {} vs {}", i, a, c);
            prop_assert!((a - w).abs() < 1e-6, "warm node {}: {} vs {}", i, a, w);
        }
    }
}
