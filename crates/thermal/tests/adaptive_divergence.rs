//! Seeded divergence-injection sweep for the adaptive transient engine.
//!
//! `./ci.sh adaptive` runs this suite in release mode. Fifty scenarios —
//! overflow power spikes, starved-CG blowups, and spike-then-recover
//! phases — drive the engine into its rejection/rollback/hold/budget
//! paths. (NaN power is unconstructible by design — the units layer
//! asserts finiteness at the [`Watts`] boundary — so the non-finite
//! divergence path is exercised with overflow-scale spikes whose CG
//! inner products blow past `f64::MAX` to infinity.) The invariants:
//!
//! * every scenario returns `Ok` — divergence degrades, never panics
//!   and never surfaces an error from the stepping loop itself;
//! * the returned temperature field is finite in every scenario (a held
//!   state is the last good state, not the diverged one);
//! * every rejection, hold, and budget exhaustion is visible in the
//!   JSONL metrics stream and the global counters.

use xylem_thermal::grid::GridSpec;
use xylem_thermal::layer::Layer;
use xylem_thermal::material::{D2D_AVERAGE, SILICON};
use xylem_thermal::package::Package;
use xylem_thermal::power::PowerMap;
use xylem_thermal::stack::Stack;
use xylem_thermal::units::Watts;
use xylem_thermal::{
    AdaptiveController, AdaptiveOptions, PreconditionerKind, SolverOptions, SolverWorkspace,
    TemperatureField, ThermalModel,
};

const DIE: f64 = 8e-3;
const N_SCENARIOS: u64 = 50;
const HORIZON_S: f64 = 0.02;

fn small_model() -> ThermalModel {
    let stack = Stack::builder(DIE, DIE)
        .package(Package::default_for_die(DIE, DIE))
        .layer(Layer::uniform("dram", 100e-6, SILICON.clone()))
        .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
        .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
        .build()
        .unwrap();
    stack.discretize(GridSpec::new(6, 6)).unwrap()
}

/// Deterministic per-seed parameter derivation (splitmix64 step), so a
/// failing scenario reproduces from its seed alone.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn opts_for(seed: u64) -> AdaptiveOptions {
    AdaptiveOptions {
        rtol: 1e-3,
        atol: 1e-3,
        dt_min: 1e-4,
        dt_max: 1e-2,
        dt_init: 1e-3,
        max_reject_streak: 2 + (mix(seed) % 3) as u32,
        // A third of the scenarios run under a CG budget tight enough
        // to trip economy mode mid-run.
        max_cg_iterations: (seed % 3 == 2).then_some(40 + mix(seed.wrapping_add(1)) % 40),
        ..AdaptiveOptions::default()
    }
}

fn assert_finite(field: &TemperatureField, seed: u64, what: &str) {
    if let Some(node) = field.raw().iter().position(|t| !t.is_finite()) {
        panic!("scenario {seed} ({what}): non-finite temperature at node {node}");
    }
}

#[test]
fn fifty_divergence_scenarios_degrade_without_panicking() {
    let sink = xylem_obs::install_memory();
    xylem_obs::reset_metrics();

    for seed in 0..N_SCENARIOS {
        let mut model = small_model();
        let initial = TemperatureField::uniform(&model, model.ambient());
        let mut ctrl = AdaptiveController::new(opts_for(seed)).unwrap();
        let mut ws = SolverWorkspace::new();

        let ix = (mix(seed) % 6) as usize;
        let iy = (mix(seed.wrapping_add(2)) % 6) as usize;
        match seed % 3 {
            0 => {
                // Overflow power spike: 1e200 W drives the CG inner
                // products past f64::MAX, so every attempted step
                // diverges non-finitely; the engine must halve to the
                // floor, then hold across the whole horizon.
                let mut power = PowerMap::zeros(&model);
                power.add_cell_power(2, ix, iy, Watts::new(1e200));
                let field = model
                    .transient_adaptive(&power, &initial, HORIZON_S, &mut ctrl, &mut ws)
                    .unwrap();
                assert_finite(&field, seed, "overflow spike");
                let s = ctrl.summary();
                assert!(s.rejected > 0, "scenario {seed}: no rejections: {s:?}");
                assert!(s.holds > 0, "scenario {seed}: no holds: {s:?}");
                assert_eq!(s.accepted, 0, "scenario {seed}: accepted diverged state");
            }
            1 => {
                // Starved CG: 1-iteration cap at an unreachable
                // tolerance with the fallback ladder disabled, so every
                // solve fails. Divergence guards must hold-and-continue.
                model.set_solver_options(SolverOptions {
                    tolerance: 1e-14,
                    max_iterations: 1,
                    preconditioner: PreconditionerKind::Jacobi,
                    fallback: false,
                });
                let mut power = PowerMap::zeros(&model);
                power.add_cell_power(2, ix, iy, Watts::new(5.0));
                let field = model
                    .transient_adaptive(&power, &initial, HORIZON_S, &mut ctrl, &mut ws)
                    .unwrap();
                assert_finite(&field, seed, "cg blowup");
                let s = ctrl.summary();
                assert!(s.rejected > 0, "scenario {seed}: no rejections: {s:?}");
                assert!(s.holds > 0, "scenario {seed}: no holds: {s:?}");
            }
            _ => {
                // Spike then recover: a poisoned phase followed by a
                // clean phase with the same controller — rollback must
                // leave the engine able to accept again.
                let mut spike = PowerMap::zeros(&model);
                spike.add_cell_power(2, ix, iy, Watts::new(1e200));
                let mid = model
                    .transient_adaptive(&spike, &initial, HORIZON_S / 2.0, &mut ctrl, &mut ws)
                    .unwrap();
                assert_finite(&mid, seed, "spike phase");
                let mut clean = PowerMap::zeros(&model);
                clean.add_cell_power(2, ix, iy, Watts::new(5.0));
                let field = model
                    .transient_adaptive(&clean, &mid, HORIZON_S / 2.0, &mut ctrl, &mut ws)
                    .unwrap();
                assert_finite(&field, seed, "recovery phase");
                let s = ctrl.summary();
                assert!(s.rejected > 0, "scenario {seed}: no rejections: {s:?}");
                assert!(
                    s.accepted + s.forced > 0,
                    "scenario {seed}: never recovered: {s:?}"
                );
            }
        }
    }

    // Aggregate visibility: the whole sweep's rollback and budget
    // activity must appear in the counters and in the JSONL stream.
    assert!(xylem_obs::counter(xylem_obs::Counter::AdaptiveRejects) > 0);
    assert!(xylem_obs::counter(xylem_obs::Counter::AdaptiveHolds) > 0);
    assert!(xylem_obs::counter(xylem_obs::Counter::AdaptiveAccepts) > 0);
    assert!(xylem_obs::counter(xylem_obs::Counter::BudgetExhaustions) > 0);

    let jsonl = sink.contents();
    xylem_obs::shutdown();
    assert!(
        jsonl.contains("\"ev\":\"adaptive_step\""),
        "no adaptive_step events in the stream"
    );
    for action in ["\"action\":\"reject\"", "\"action\":\"hold\""] {
        assert!(jsonl.contains(action), "no {action} events in the stream");
    }
    assert!(
        jsonl.contains("\"ev\":\"adaptive_budget\""),
        "no adaptive_budget events in the stream"
    );
    assert!(
        jsonl.contains("\"which\":\"reject_streak\""),
        "reject-streak exhaustion not reported"
    );
}
