//! Convergence of the adaptive transient engine toward a tight
//! fixed-step reference.
//!
//! `./ci.sh adaptive` runs this suite in release mode. The property
//! under test is the whole point of error control: as `rtol` shrinks,
//! the adaptive trajectory approaches the trajectory of a fixed-step
//! run at a step 10x finer than the adaptive engine's initial rung —
//! while spending far fewer backward-Euler solves than that reference.

use proptest::prelude::*;

use xylem_thermal::grid::GridSpec;
use xylem_thermal::layer::Layer;
use xylem_thermal::material::{D2D_AVERAGE, SILICON};
use xylem_thermal::package::Package;
use xylem_thermal::power::PowerMap;
use xylem_thermal::stack::Stack;
use xylem_thermal::units::Watts;
use xylem_thermal::{AdaptiveController, AdaptiveOptions, SolverWorkspace, ThermalModel};

const DIE: f64 = 8e-3;
const HORIZON_S: f64 = 0.05;
const REF_DT_S: f64 = 1e-4;

fn small_model() -> ThermalModel {
    let stack = Stack::builder(DIE, DIE)
        .package(Package::default_for_die(DIE, DIE))
        .layer(Layer::uniform("dram", 100e-6, SILICON.clone()))
        .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
        .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
        .build()
        .unwrap();
    stack.discretize(GridSpec::new(6, 6)).unwrap()
}

fn opts_with_rtol(rtol: f64) -> AdaptiveOptions {
    AdaptiveOptions {
        rtol,
        atol: rtol,
        dt_min: 1e-5,
        dt_max: 1e-2,
        dt_init: 1e-3,
        ..AdaptiveOptions::default()
    }
}

fn max_temp(raw: &[f64]) -> f64 {
    raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Runs the adaptive engine over the horizon and returns the final
/// max-temperature error vs the fixed-step reference, plus BE solves.
fn adaptive_error(model: &ThermalModel, power: &PowerMap, reference: f64, rtol: f64) -> (f64, u64) {
    let initial = xylem_thermal::TemperatureField::uniform(model, model.ambient());
    let mut ctrl = AdaptiveController::new(opts_with_rtol(rtol)).unwrap();
    let mut ws = SolverWorkspace::new();
    let field = model
        .transient_adaptive(power, &initial, HORIZON_S, &mut ctrl, &mut ws)
        .unwrap();
    let s = ctrl.summary();
    assert_eq!(s.rejected + s.holds, s.rejected, "healthy run never holds");
    ((max_temp(field.raw()) - reference).abs(), s.be_solves)
}

#[test]
fn error_shrinks_with_rtol_and_beats_reference_solve_count() {
    let model = small_model();
    let mut power = PowerMap::zeros(&model);
    power.add_cell_power(2, 2, 3, Watts::new(8.0));
    power.add_cell_power(2, 4, 1, Watts::new(4.0));

    let initial = xylem_thermal::TemperatureField::uniform(&model, model.ambient());
    let ref_steps = (HORIZON_S / REF_DT_S).round() as usize;
    let reference = model
        .transient(&power, &initial, REF_DT_S, ref_steps)
        .unwrap();
    let ref_max = max_temp(reference.raw());

    let (err_loose, _) = adaptive_error(&model, &power, ref_max, 1e-2);
    let (err_mid, solves_mid) = adaptive_error(&model, &power, ref_max, 1e-3);
    let (err_tight, _) = adaptive_error(&model, &power, ref_max, 1e-4);

    // Tighter tolerance must not be meaningfully worse than looser
    // tolerance (weak monotonicity: LTE control bounds the local, not
    // global, error, so allow a small absolute slack).
    const SLACK_K: f64 = 0.02;
    assert!(
        err_mid <= err_loose + SLACK_K,
        "rtol 1e-3 error {err_mid} K > rtol 1e-2 error {err_loose} K"
    );
    assert!(
        err_tight <= err_mid + SLACK_K,
        "rtol 1e-4 error {err_tight} K > rtol 1e-3 error {err_mid} K"
    );

    // The paper-claims bar: rtol 1e-3 lands within 0.1 K of the 10x
    // finer fixed-step reference, with at least 2x fewer BE solves.
    assert!(
        err_mid <= 0.1,
        "rtol 1e-3 deviates {err_mid} K from the dt={REF_DT_S} reference"
    );
    assert!(
        solves_mid * 2 <= ref_steps as u64,
        "adaptive used {solves_mid} solves vs reference {ref_steps}"
    );

    // And the tight setting is genuinely accurate.
    assert!(err_tight <= 0.05, "rtol 1e-4 error {err_tight} K");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary point injections the adaptive trajectory at
    /// rtol 1e-3 stays within 0.1 K of the fine fixed-step reference.
    #[test]
    fn adaptive_tracks_reference_for_random_power(
        cells in proptest::collection::vec((0usize..3, 0usize..6, 0usize..6, 0.5f64..6.0), 1..5)
    ) {
        let model = small_model();
        let mut power = PowerMap::zeros(&model);
        for &(l, ix, iy, w) in &cells {
            power.add_cell_power(l, ix, iy, Watts::new(w));
        }
        let initial = xylem_thermal::TemperatureField::uniform(&model, model.ambient());
        let ref_steps = (HORIZON_S / REF_DT_S).round() as usize;
        let reference = model.transient(&power, &initial, REF_DT_S, ref_steps).unwrap();
        let ref_max = max_temp(reference.raw());
        let (err, solves) = adaptive_error(&model, &power, ref_max, 1e-3);
        prop_assert!(err <= 0.1, "error {err} K vs reference");
        // The strict 2x saving is asserted on the named workload above;
        // arbitrary injections must still always beat the reference.
        prop_assert!(solves < ref_steps as u64,
            "adaptive used {solves} solves vs reference {ref_steps}");
    }
}
