//! Property-based tests for the thermal solver's physical invariants.

use proptest::prelude::*;

use xylem_thermal::floorplan::{Floorplan, Rect};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::layer::Layer;
use xylem_thermal::material::{D2D_AVERAGE, SILICON};
use xylem_thermal::package::Package;
use xylem_thermal::power::PowerMap;
use xylem_thermal::stack::Stack;
use xylem_thermal::units::Watts;
use xylem_thermal::{SolverWorkspace, ThermalModel};

const DIE: f64 = 8e-3;

fn small_model() -> ThermalModel {
    let stack = Stack::builder(DIE, DIE)
        .package(Package::default_for_die(DIE, DIE))
        .layer(Layer::uniform("dram", 100e-6, SILICON.clone()))
        .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
        .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
        .build()
        .unwrap();
    stack.discretize(GridSpec::new(6, 6)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Steady state conserves energy: convected+board outflow equals the
    /// injected power, for arbitrary point injections.
    #[test]
    fn conservation_holds_for_random_injections(
        cells in proptest::collection::vec((0usize..3, 0usize..6, 0usize..6, 0.1f64..5.0), 1..6)
    ) {
        let m = small_model();
        let mut p = PowerMap::zeros(&m);
        for &(l, ix, iy, w) in &cells {
            p.add_cell_power(l, ix, iy, Watts::new(w));
        }
        let t = m.steady_state(&p).unwrap();
        let outflow = m.ambient_outflow(&t);
        let total = p.total();
        prop_assert!((outflow - total).abs() < 1e-3 * total.get().max(1.0),
            "outflow {outflow} vs injected {total}");
    }

    /// Every node is at or above ambient when all power is non-negative
    /// (discrete maximum principle).
    #[test]
    fn no_node_below_ambient(
        layer in 0usize..3,
        ix in 0usize..6,
        iy in 0usize..6,
        watts in 0.0f64..20.0,
    ) {
        let m = small_model();
        let mut p = PowerMap::zeros(&m);
        p.add_cell_power(layer, ix, iy, Watts::new(watts));
        let t = m.steady_state(&p).unwrap();
        let min = t.raw().iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(min >= m.ambient().get() - 1e-6, "min {min} < ambient");
    }

    /// Scaling the power map scales the temperature rise (linearity).
    #[test]
    fn temperature_rise_is_linear_in_power(
        layer in 0usize..3,
        ix in 0usize..6,
        iy in 0usize..6,
        watts in 0.5f64..5.0,
        k in 1.5f64..4.0,
    ) {
        let m = small_model();
        let mut p1 = PowerMap::zeros(&m);
        p1.add_cell_power(layer, ix, iy, Watts::new(watts));
        let mut p2 = p1.clone();
        p2.scale(k);
        let t1 = m.steady_state(&p1).unwrap();
        let t2 = m.steady_state(&p2).unwrap();
        let amb = m.ambient();
        let rise1 = t1.hotspot_of_layer(layer).1 - amb;
        let rise2 = t2.hotspot_of_layer(layer).1 - amb;
        prop_assert!((rise2 - k * rise1).abs() < 1e-6 * rise2.abs().max(1.0),
            "rise {rise2} vs {k} * {rise1}");
    }

    /// Adding power anywhere never cools any node (monotonicity).
    #[test]
    fn extra_power_never_cools(
        l1 in 0usize..3, x1 in 0usize..6, y1 in 0usize..6,
        l2 in 0usize..3, x2 in 0usize..6, y2 in 0usize..6,
    ) {
        let m = small_model();
        let mut pa = PowerMap::zeros(&m);
        pa.add_cell_power(l1, x1, y1, Watts::new(3.0));
        let mut pb = pa.clone();
        pb.add_cell_power(l2, x2, y2, Watts::new(2.0));
        let ta = m.steady_state(&pa).unwrap();
        let tb = m.steady_state(&pb).unwrap();
        for (a, b) in ta.raw().iter().zip(tb.raw()) {
            prop_assert!(b + 1e-7 >= *a, "{b} < {a}");
        }
    }

    /// Block rasterization weights always sum to 1 for blocks inside the
    /// outline, regardless of alignment with the grid.
    #[test]
    fn rasterization_weights_sum_to_one(
        x in 0.0f64..0.7,
        y in 0.0f64..0.7,
        w in 0.05f64..0.3,
        h in 0.05f64..0.3,
        n in 3usize..12,
    ) {
        let mut fp = Floorplan::new(DIE, DIE);
        fp.add_block("b", Rect::new(x * DIE, y * DIE, w * DIE, h * DIE)).unwrap();
        let stack = Stack::builder(DIE, DIE)
            .layer(Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp))
            .build()
            .unwrap();
        let m = stack.discretize(GridSpec::new(n, n)).unwrap();
        let sum: f64 = m.block_weights(0, "b").unwrap().iter().map(|&(_, w)| w).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    /// The flat CSR matvec agrees with the adjacency-list reference
    /// lowering on arbitrary stacks and grids.
    #[test]
    fn csr_matvec_matches_adjacency(
        layers in 1usize..5,
        nx in 3usize..10,
        ny in 3usize..10,
        thickness_um in 40.0f64..200.0,
        seed in 0u64..1000,
    ) {
        let mut b = Stack::builder(DIE, DIE).package(Package::default_for_die(DIE, DIE));
        for l in 0..layers {
            let mat = if l % 2 == 0 { SILICON.clone() } else { D2D_AVERAGE.clone() };
            b = b.layer(Layer::uniform(format!("l{l}"), thickness_um * 1e-6, mat));
        }
        let m = b.build().unwrap().discretize(GridSpec::new(nx, ny)).unwrap();
        let n = m.node_count();
        // Deterministic pseudo-random input vector from the seed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let x: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }).collect();
        let mut y_adj = vec![0.0; n];
        let mut y_csr = vec![0.0; n];
        m.matvec_adjacency(&x, &mut y_adj);
        m.csr().matvec_serial(&x, &mut y_csr);
        for (a, c) in y_adj.iter().zip(&y_csr) {
            prop_assert!((a - c).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {c}");
        }
        // The auto-dispatching matvec is bit-identical to the serial one.
        let mut y_auto = vec![0.0; n];
        m.csr().matvec(&x, &mut y_auto);
        for (c, au) in y_csr.iter().zip(&y_auto) {
            prop_assert!(c.to_bits() == au.to_bits());
        }
    }

    /// A warm-started CG solve lands on the same solution as a cold
    /// start, for arbitrary injections and an arbitrary (wrong) guess
    /// scale.
    #[test]
    fn warm_start_matches_cold_start_solution(
        cells in proptest::collection::vec((0usize..3, 0usize..6, 0usize..6, 0.1f64..5.0), 1..6),
        guess_cells in proptest::collection::vec((0usize..3, 0usize..6, 0usize..6, 0.1f64..8.0), 1..4),
    ) {
        let m = small_model();
        let mut p = PowerMap::zeros(&m);
        for &(l, ix, iy, w) in &cells {
            p.add_cell_power(l, ix, iy, Watts::new(w));
        }
        let mut ws = SolverWorkspace::new();
        let cold = m.steady_state_from(&p, None, &mut ws).unwrap();
        // Guess: the solution of an unrelated power map.
        let mut pg = PowerMap::zeros(&m);
        for &(l, ix, iy, w) in &guess_cells {
            pg.add_cell_power(l, ix, iy, Watts::new(w));
        }
        let guess = m.steady_state_from(&pg, None, &mut ws).unwrap();
        let warm = m.steady_state_from(&p, Some(&guess), &mut ws).unwrap();
        for (c, w) in cold.raw().iter().zip(warm.raw()) {
            prop_assert!((c - w).abs() < 1e-5, "{c} vs {w}");
        }
    }

    /// A power map built from block power conserves the block total.
    #[test]
    fn block_power_total_preserved(
        x in 0.0f64..0.6,
        y in 0.0f64..0.6,
        w in 0.1f64..0.4,
        h in 0.1f64..0.4,
        watts in 0.1f64..30.0,
    ) {
        let mut fp = Floorplan::new(DIE, DIE);
        fp.add_block("b", Rect::new(x * DIE, y * DIE, w * DIE, h * DIE)).unwrap();
        let stack = Stack::builder(DIE, DIE)
            .layer(Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp))
            .build()
            .unwrap();
        let m = stack.discretize(GridSpec::new(9, 9)).unwrap();
        let mut p = PowerMap::zeros(&m);
        p.add_block_power(&m, 0, "b", Watts::new(watts)).unwrap();
        prop_assert!((p.total().get() - watts).abs() < 1e-9 * watts);
    }
}
