//! The keyed LRU transient-operator cache under concurrency.
//!
//! xylem-serve shares one `ThermalModel` (and therefore one transient
//! cache) across every session compiled from the same stack, so the
//! cache must tolerate N threads hammering distinct `dt` keys at once:
//! no deadlock, results bit-identical to a single-threaded run, and
//! hit/miss/eviction counters that stay consistent with the number of
//! lookups actually performed. The dt working set is deliberately
//! larger than the slot count so evictions happen *while other threads
//! hold in-flight operators* — the `Arc` slots must keep an evicted
//! operator alive until its last solve completes.

use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::thread;

use xylem_obs::{counter, Counter};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::layer::Layer;
use xylem_thermal::material::{D2D_AVERAGE, SILICON};
use xylem_thermal::package::Package;
use xylem_thermal::power::PowerMap;
use xylem_thermal::stack::Stack;
use xylem_thermal::units::Watts;
use xylem_thermal::{SolverWorkspace, TemperatureField, ThermalModel};

const DIE: f64 = 8e-3;
const N_THREADS: usize = 8;
const STEPS: usize = 2;
/// Six distinct keys against four cache slots: every full rotation
/// evicts, so the churn path runs constantly.
const DTS: [f64; 6] = [1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 4e-3];

/// Counter assertions are deltas over process-global atomics, so tests
/// that read them must not interleave with each other.
fn counter_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn small_model() -> ThermalModel {
    let stack = Stack::builder(DIE, DIE)
        .package(Package::default_for_die(DIE, DIE))
        .layer(Layer::uniform("dram", 100e-6, SILICON.clone()))
        .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
        .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
        .build()
        .unwrap();
    stack.discretize(GridSpec::new(6, 6)).unwrap()
}

fn test_power(model: &ThermalModel) -> PowerMap {
    let mut p = PowerMap::zeros(model);
    p.add_uniform_layer_power(2, Watts::new(3.0));
    p
}

/// One deterministic solve: fixed initial state, cold workspace, no
/// explicit guess. Returns the raw solution bits.
fn solve_bits(model: &ThermalModel, power: &PowerMap, dt: f64) -> Vec<u64> {
    let initial = TemperatureField::uniform(model, model.ambient());
    let mut ws = SolverWorkspace::new();
    let field = model
        .transient_with(power, &initial, dt, STEPS, None, &mut ws)
        .unwrap();
    field.raw().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn concurrent_shared_cache_is_bit_identical_and_counts_consistently() {
    let _serial = counter_lock().lock().unwrap();
    let model = Arc::new(small_model());
    let power = Arc::new(test_power(&model));

    // Reference pass, strictly single-threaded.
    let reference: Vec<Vec<u64>> = DTS
        .iter()
        .map(|&dt| solve_bits(&model, &power, dt))
        .collect();
    let single_calls = DTS.len() as u64;

    let hits0 = counter(Counter::TransientCacheHits);
    let misses0 = counter(Counter::TransientCacheMisses);
    let evict0 = counter(Counter::TransientCacheEvictions);

    // Concurrent pass: every thread walks the dt ring from a different
    // phase, so distinct keys contend and the LRU order churns.
    let barrier = Arc::new(Barrier::new(N_THREADS));
    let handles: Vec<_> = (0..N_THREADS)
        .map(|t| {
            let model = Arc::clone(&model);
            let power = Arc::clone(&power);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut out = Vec::with_capacity(DTS.len());
                for k in 0..DTS.len() {
                    let i = (k + t) % DTS.len();
                    out.push((i, solve_bits(&model, &power, DTS[i])));
                }
                out
            })
        })
        .collect();
    for h in handles {
        for (i, bits) in h.join().expect("cache worker panicked") {
            assert_eq!(
                bits, reference[i],
                "dt={} diverged from the single-threaded reference",
                DTS[i]
            );
        }
    }

    let hits = counter(Counter::TransientCacheHits) - hits0;
    let misses = counter(Counter::TransientCacheMisses) - misses0;
    let evictions = counter(Counter::TransientCacheEvictions) - evict0;
    let calls = (N_THREADS * DTS.len()) as u64;
    assert_eq!(
        hits + misses,
        calls,
        "every lookup must be exactly one hit or one miss"
    );
    // The reference pass warmed the cache, so the concurrent pass must
    // rebuild at least once per key beyond the slot capacity — and an
    // eviction can only follow a miss.
    assert!(misses >= 1, "six keys over four slots cannot all hit");
    assert!(
        evictions <= misses,
        "evictions ({evictions}) exceeded misses ({misses})"
    );
    let _ = single_calls;
}

#[test]
fn single_threaded_counters_are_exact() {
    let _serial = counter_lock().lock().unwrap();
    let model = small_model();
    let power = test_power(&model);

    let hits0 = counter(Counter::TransientCacheHits);
    let misses0 = counter(Counter::TransientCacheMisses);
    let evict0 = counter(Counter::TransientCacheEvictions);

    // Two full rotations over six keys with four slots: with an LRU
    // that evicts the oldest key, a ring walk longer than the capacity
    // never hits — every lookup misses and (once warm) evicts.
    for _ in 0..2 {
        for &dt in &DTS {
            let _ = solve_bits(&model, &power, dt);
        }
    }
    let hits = counter(Counter::TransientCacheHits) - hits0;
    let misses = counter(Counter::TransientCacheMisses) - misses0;
    let evictions = counter(Counter::TransientCacheEvictions) - evict0;
    assert_eq!(hits, 0, "a ring walk over capacity must never hit");
    assert_eq!(misses, 2 * DTS.len() as u64);
    // The first four misses fill empty slots; every later miss evicts.
    assert_eq!(evictions, misses - 4);
}
