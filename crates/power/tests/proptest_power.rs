//! Property-based tests for the power model.

use proptest::prelude::*;

use xylem_power::units::{Celsius, Watts};
use xylem_power::{CoreActivity, ProcessorPowerModel, UncoreActivity};

fn cores(activity: f64, mi: f64, f: f64, m: &ProcessorPowerModel) -> Vec<CoreActivity> {
    let p = m.dvfs().point_at(f);
    vec![
        CoreActivity {
            activity,
            memory_intensity: mi,
            point: p,
        };
        8
    ]
}

fn uncore(u: f64, f: f64, m: &ProcessorPowerModel) -> UncoreActivity {
    UncoreActivity {
        llc: u,
        mc: [u; 4],
        noc: u,
        point: m.dvfs().point_at(f),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All block powers are non-negative and sum to the reported total.
    #[test]
    fn blocks_nonnegative_and_sum(
        activity in 0.0f64..1.0,
        mi in 0.0f64..1.0,
        u in 0.0f64..1.0,
        f in 2.4f64..3.5,
        t in 40.0f64..110.0,
    ) {
        let m = ProcessorPowerModel::paper_default();
        let blocks = m.block_powers(&cores(activity, mi, f, &m), &uncore(u, f, &m), Celsius::new(t));
        let mut sum = Watts::ZERO;
        for (name, w) in &blocks {
            prop_assert!(*w >= 0.0, "{name} = {w}");
            sum = sum + *w;
        }
        let total = m.total_power(&cores(activity, mi, f, &m), &uncore(u, f, &m), Celsius::new(t));
        prop_assert!((sum - total).abs() < 1e-9);
    }

    /// Power is monotone in activity, frequency, and temperature.
    #[test]
    fn monotone_in_inputs(
        a1 in 0.0f64..0.9,
        da in 0.01f64..0.1,
        f in 2.4f64..3.4,
        t in 40.0f64..100.0,
    ) {
        let m = ProcessorPowerModel::paper_default();
        let base = m.total_power(&cores(a1, 0.3, f, &m), &uncore(0.3, f, &m), Celsius::new(t));
        let more_active = m.total_power(&cores(a1 + da, 0.3, f, &m), &uncore(0.3, f, &m), Celsius::new(t));
        prop_assert!(more_active > base);
        let faster = m.total_power(&cores(a1, 0.3, f + 0.1, &m), &uncore(0.3, f + 0.1, &m), Celsius::new(t));
        prop_assert!(faster > base);
        let hotter = m.total_power(&cores(a1, 0.3, f, &m), &uncore(0.3, f, &m), Celsius::new(t + 5.0));
        prop_assert!(hotter > base);
    }

    /// Memory intensity redistributes but does not create power: total
    /// core dynamic power is independent of the blend.
    #[test]
    fn memory_intensity_preserves_core_total(
        mi1 in 0.0f64..1.0,
        mi2 in 0.0f64..1.0,
        activity in 0.1f64..1.0,
    ) {
        let m = ProcessorPowerModel::paper_default();
        let sum_cores = |mi: f64| -> f64 {
            m.block_powers(&cores(activity, mi, 2.4, &m), &uncore(0.0, 2.4, &m), Celsius::new(70.0))
                .iter()
                .filter(|(n, _)| n.starts_with("core"))
                .map(|(_, w)| w.get())
                .sum()
        };
        prop_assert!((sum_cores(mi1) - sum_cores(mi2)).abs() < 1e-9);
    }

    /// Idle cores consume only leakage: activity 0 at any frequency is
    /// cheaper than any active configuration.
    #[test]
    fn idle_floor(f in 2.4f64..3.5, a in 0.05f64..1.0) {
        let m = ProcessorPowerModel::paper_default();
        let idle = m.total_power(&cores(0.0, 0.0, f, &m), &uncore(0.0, f, &m), Celsius::new(70.0));
        let busy = m.total_power(&cores(a, 0.5, f, &m), &uncore(0.2, f, &m), Celsius::new(70.0));
        prop_assert!(idle < busy);
        prop_assert!(idle > 0.0); // leakage never disappears
    }
}
