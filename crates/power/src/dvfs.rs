//! DVFS operating points (paper Sec. 5.1, 6.2).
//!
//! The evaluated processor runs between 2.4 GHz (default, thermally forced)
//! and 3.5 GHz (design frequency) in 100 MHz steps. Voltage follows a
//! linear schedule from 0.90 V to 1.25 V across that range — the shape of
//! commercial DVFS tables.

use serde::{Deserialize, Serialize};

/// One frequency/voltage pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core frequency, GHz.
    pub frequency_ghz: f64,
    /// Supply voltage, V.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Dynamic-power scale factor relative to a reference point:
    /// `(f/f_ref) * (V/V_ref)^2`.
    pub fn dynamic_scale(&self, reference: &OperatingPoint) -> f64 {
        (self.frequency_ghz / reference.frequency_ghz) * (self.voltage / reference.voltage).powi(2)
    }

    /// Leakage scale factor relative to a reference point: `V/V_ref`
    /// (temperature dependence is applied separately).
    pub fn leakage_scale(&self, reference: &OperatingPoint) -> f64 {
        self.voltage / reference.voltage
    }
}

/// The DVFS table: an inclusive frequency range in fixed steps with a
/// linear voltage schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    f_min_ghz: f64,
    f_max_ghz: f64,
    step_ghz: f64,
    v_min: f64,
    v_max: f64,
}

impl DvfsTable {
    /// The paper's table: 2.4-3.5 GHz in 100 MHz steps. The voltage
    /// schedule (0.90-1.10 V) is the flat upper region of a
    /// Sandy-Bridge-class V/f curve: the cores are *designed* for
    /// 3.5 GHz (Sec. 7.3.1) and are thermally — not voltage — limited at
    /// 2.4 GHz, so boosting spends little extra voltage.
    pub fn paper_default() -> Self {
        DvfsTable {
            f_min_ghz: 2.4,
            f_max_ghz: 3.5,
            step_ghz: 0.1,
            v_min: 0.90,
            v_max: 1.10,
        }
    }

    /// Creates a custom table.
    ///
    /// # Panics
    ///
    /// Panics if the range or step is degenerate.
    pub fn new(f_min_ghz: f64, f_max_ghz: f64, step_ghz: f64, v_min: f64, v_max: f64) -> Self {
        assert!(f_min_ghz > 0.0 && f_max_ghz >= f_min_ghz && step_ghz > 0.0);
        assert!(v_min > 0.0 && v_max >= v_min);
        DvfsTable {
            f_min_ghz,
            f_max_ghz,
            step_ghz,
            v_min,
            v_max,
        }
    }

    /// Lowest frequency, GHz.
    pub fn min_frequency_ghz(&self) -> f64 {
        self.f_min_ghz
    }

    /// Highest (design) frequency, GHz.
    pub fn max_frequency_ghz(&self) -> f64 {
        self.f_max_ghz
    }

    /// Step size, GHz.
    pub fn step_ghz(&self) -> f64 {
        self.step_ghz
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        ((self.f_max_ghz - self.f_min_ghz) / self.step_ghz).round() as usize + 1
    }

    /// Whether the table is a single point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Voltage at `frequency_ghz` (linear interpolation, clamped).
    pub fn voltage_at(&self, frequency_ghz: f64) -> f64 {
        if self.f_max_ghz <= self.f_min_ghz {
            return self.v_max;
        }
        let t =
            ((frequency_ghz - self.f_min_ghz) / (self.f_max_ghz - self.f_min_ghz)).clamp(0.0, 1.0);
        self.v_min + t * (self.v_max - self.v_min)
    }

    /// The operating point at index `i` (0 = slowest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn point(&self, i: usize) -> OperatingPoint {
        assert!(i < self.len(), "DVFS index {i} out of range");
        let f = self.f_min_ghz + i as f64 * self.step_ghz;
        OperatingPoint {
            frequency_ghz: f,
            voltage: self.voltage_at(f),
        }
    }

    /// The operating point closest to `frequency_ghz`, clamped to the
    /// table.
    pub fn point_at(&self, frequency_ghz: f64) -> OperatingPoint {
        let i = ((frequency_ghz - self.f_min_ghz) / self.step_ghz).round();
        let i = (i.max(0.0) as usize).min(self.len() - 1);
        self.point(i)
    }

    /// The reference (lowest) operating point — 2.4 GHz in the paper.
    pub fn reference(&self) -> OperatingPoint {
        self.point(0)
    }

    /// Iterates all points, slowest first.
    pub fn points(&self) -> impl Iterator<Item = OperatingPoint> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_12_points() {
        let t = DvfsTable::paper_default();
        assert_eq!(t.len(), 12);
        assert_eq!(t.point(0).frequency_ghz, 2.4);
        let top = t.point(11);
        assert!((top.frequency_ghz - 3.5).abs() < 1e-9);
        assert!((top.voltage - 1.10).abs() < 1e-9);
    }

    #[test]
    fn voltage_is_monotone() {
        let t = DvfsTable::paper_default();
        let mut prev = 0.0;
        for p in t.points() {
            assert!(p.voltage > prev);
            prev = p.voltage;
        }
    }

    #[test]
    fn point_at_rounds_and_clamps() {
        let t = DvfsTable::paper_default();
        assert!((t.point_at(2.44).frequency_ghz - 2.4).abs() < 1e-9);
        assert!((t.point_at(2.46).frequency_ghz - 2.5).abs() < 1e-9);
        assert!((t.point_at(1.0).frequency_ghz - 2.4).abs() < 1e-9);
        assert!((t.point_at(9.0).frequency_ghz - 3.5).abs() < 1e-9);
    }

    #[test]
    fn dynamic_scale_grows_superlinearly() {
        let t = DvfsTable::paper_default();
        let r = t.reference();
        let top = t.point_at(3.5);
        let s = top.dynamic_scale(&r);
        // (3.5/2.4) * (1.10/0.9)^2 = 2.18
        assert!((s - 2.18).abs() < 0.01, "{s}");
        assert!(s > 3.5 / 2.4);
    }

    #[test]
    fn leakage_scale_is_voltage_ratio() {
        let t = DvfsTable::paper_default();
        let s = t.point_at(3.5).leakage_scale(&t.reference());
        assert!((s - 1.10 / 0.9).abs() < 1e-9);
    }
}
