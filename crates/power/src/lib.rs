//! Analytic processor power model with DVFS (the McPAT stand-in).
//!
//! The thermal experiments need, for every workload and operating point, a
//! per-block power map of the processor die. This crate provides:
//!
//! * [`dvfs`] — the paper's DVFS range: 2.4-3.5 GHz in 100 MHz steps with a
//!   linear voltage schedule (Sandy-Bridge-class power management,
//!   Sec. 5.1);
//! * [`blocks`] — per-block dynamic-power and area fractions of a 4-issue
//!   out-of-order core;
//! * [`processor`] — [`ProcessorPowerModel`], which combines per-core
//!   activities, per-core operating points (cores may run at different
//!   frequencies for the conductivity-aware techniques), uncore activity,
//!   and temperature-dependent leakage into named block powers.
//!
//! Calibration: at 2.4 GHz the processor die spans ~8 W (memory-bound
//! workloads) to ~24 W (compute-bound), matching the paper's Sec. 6.2
//! statement (validated against Intel's Xeon E3-1260L envelope).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocks;
pub mod dvfs;
pub mod processor;

/// Physical-quantity newtypes used in this crate's public API
/// (re-exported from `xylem-thermal`).
pub use xylem_thermal::units;

pub use dvfs::{DvfsTable, OperatingPoint};
pub use processor::{CoreActivity, ProcessorPowerModel, UncoreActivity};
