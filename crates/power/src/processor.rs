//! The processor-die power model: named block powers from activities.
//!
//! [`ProcessorPowerModel::block_powers`] produces `(block name, watts)`
//! pairs whose names match the processor floorplan of `xylem-stack`
//! (`core{id}_{sub}`, `llc_top`, `llc_bot`, `mc0..3`, `noc0/1`,
//! `tsv_bus`), ready to feed `xylem_thermal::PowerMap::add_block_power`.

use serde::{Deserialize, Serialize};

use xylem_thermal::units::{Celsius, Watts};

use crate::blocks::{dynamic_fractions, CORE_BLOCKS, LEAKAGE_FRACTION};
use crate::dvfs::{DvfsTable, OperatingPoint};

/// Number of cores the model covers.
pub const NUM_CORES: usize = 8;

/// Per-core inputs for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreActivity {
    /// Dynamic activity factor, 0 (idle/clock-gated) to 1 (peak).
    pub activity: f64,
    /// Memory intensity, 0 (compute-bound) to 1 (memory-bound): shifts
    /// dynamic power between execution units and the memory pipeline.
    pub memory_intensity: f64,
    /// This core's operating point (cores may differ under the
    /// conductivity-aware boosting technique).
    pub point: OperatingPoint,
}

impl CoreActivity {
    /// An idle, power-gated core at the given point.
    pub fn idle(point: OperatingPoint) -> Self {
        CoreActivity {
            activity: 0.0,
            memory_intensity: 0.0,
            point,
        }
    }
}

/// Uncore inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncoreActivity {
    /// LLC activity, 0..1.
    pub llc: f64,
    /// Per-memory-controller utilization, 0..1.
    pub mc: [f64; 4],
    /// Coherence-bus/NoC activity, 0..1.
    pub noc: f64,
    /// Uncore operating point (typically the chip-wide base point).
    pub point: OperatingPoint,
}

/// Analytic processor power model (the McPAT stand-in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorPowerModel {
    dvfs: DvfsTable,
    /// Dynamic watts of one core at activity 1, at the reference point.
    core_dynamic_ref: f64,
    /// Leakage watts of one core at the reference voltage and temperature.
    core_leakage_ref: f64,
    /// LLC dynamic watts at activity 1 (reference point).
    llc_dynamic_ref: f64,
    /// LLC leakage watts (large SRAM arrays leak).
    llc_leakage_ref: f64,
    /// Dynamic watts of one memory controller at utilization 1.
    mc_dynamic_ref: f64,
    /// Leakage watts of one memory controller.
    mc_leakage_ref: f64,
    /// Dynamic watts of the NoC/coherence bus at activity 1.
    noc_dynamic_ref: f64,
    /// TSV-bus I/O driver watts at full memory utilization.
    bus_io_ref: f64,
    /// Linearized leakage temperature slope, 1/K (leakage grows
    /// `1 + coeff * (T - T_ref)`).
    leakage_temp_coeff: f64,
    /// Leakage reference temperature, deg C.
    reference_temp: f64,
}

impl ProcessorPowerModel {
    /// The calibrated model: processor die spans ~8 W (memory-bound) to
    /// ~24 W (compute-bound, hot) at 2.4 GHz — the paper's Sec. 6.2
    /// envelope, validated against the Xeon E3-1260L class.
    pub fn paper_default() -> Self {
        ProcessorPowerModel {
            dvfs: DvfsTable::paper_default(),
            core_dynamic_ref: 1.70,
            core_leakage_ref: 0.50,
            llc_dynamic_ref: 1.8,
            llc_leakage_ref: 1.1,
            mc_dynamic_ref: 0.35,
            mc_leakage_ref: 0.05,
            noc_dynamic_ref: 0.6,
            bus_io_ref: 0.25,
            leakage_temp_coeff: 0.008,
            reference_temp: 70.0,
        }
    }

    /// The DVFS table.
    pub fn dvfs(&self) -> &DvfsTable {
        &self.dvfs
    }

    /// Leakage multiplier at `temp` (linearized exponential).
    pub fn leakage_temp_factor(&self, temp: Celsius) -> f64 {
        (1.0 + self.leakage_temp_coeff * (temp.get() - self.reference_temp)).max(0.5)
    }

    /// Power of one core, split `(dynamic, leakage)`.
    pub fn core_power(&self, core: &CoreActivity, temp: Celsius) -> (Watts, Watts) {
        let reference = self.dvfs.reference();
        let dyn_w = self.core_dynamic_ref
            * core.activity.clamp(0.0, 1.0)
            * core.point.dynamic_scale(&reference);
        let leak_w = self.core_leakage_ref
            * core.point.leakage_scale(&reference)
            * self.leakage_temp_factor(temp);
        (Watts::new(dyn_w), Watts::new(leak_w))
    }

    /// Named block powers for the whole die: 8 cores x 9 blocks plus the
    /// uncore blocks. `temp` drives leakage (use the previous iteration's
    /// hotspot estimate, or the ambient for a cold start).
    ///
    /// # Panics
    ///
    /// Panics if `cores.len() != 8`.
    pub fn block_powers(
        &self,
        cores: &[CoreActivity],
        uncore: &UncoreActivity,
        temp: Celsius,
    ) -> Vec<(String, Watts)> {
        assert_eq!(cores.len(), NUM_CORES, "expected {NUM_CORES} cores");
        let reference = self.dvfs.reference();
        let mut out = Vec::with_capacity(NUM_CORES * CORE_BLOCKS.len() + 9);

        for (i, core) in cores.iter().enumerate() {
            let id = i + 1;
            let (dyn_w, leak_w) = self.core_power(core, temp);
            let fr = dynamic_fractions(core.memory_intensity.clamp(0.0, 1.0));
            for (bi, block) in CORE_BLOCKS.iter().enumerate() {
                let w = dyn_w.get() * fr[bi] + leak_w.get() * LEAKAGE_FRACTION;
                out.push((format!("core{id}_{block}"), Watts::new(w)));
            }
        }

        let up = &uncore.point;
        let dyn_scale = up.dynamic_scale(&reference);
        let leak_scale = up.leakage_scale(&reference) * self.leakage_temp_factor(temp);
        let llc = self.llc_dynamic_ref * uncore.llc.clamp(0.0, 1.0) * dyn_scale
            + self.llc_leakage_ref * leak_scale;
        out.push(("llc_top".into(), Watts::new(llc / 2.0)));
        out.push(("llc_bot".into(), Watts::new(llc / 2.0)));
        let mut mc_util_sum = 0.0;
        for (i, &util) in uncore.mc.iter().enumerate() {
            let w = self.mc_dynamic_ref * util.clamp(0.0, 1.0) * dyn_scale
                + self.mc_leakage_ref * leak_scale;
            mc_util_sum += util.clamp(0.0, 1.0);
            out.push((format!("mc{i}"), Watts::new(w)));
        }
        let noc = self.noc_dynamic_ref * uncore.noc.clamp(0.0, 1.0) * dyn_scale;
        out.push(("noc0".into(), Watts::new(noc / 2.0)));
        out.push(("noc1".into(), Watts::new(noc / 2.0)));
        out.push((
            "tsv_bus".into(),
            Watts::new(self.bus_io_ref * (mc_util_sum / 4.0) * dyn_scale),
        ));
        out
    }

    /// Total die power for the given inputs.
    pub fn total_power(
        &self,
        cores: &[CoreActivity],
        uncore: &UncoreActivity,
        temp: Celsius,
    ) -> Watts {
        self.block_powers(cores, uncore, temp)
            .iter()
            .map(|&(_, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_cores(activity: f64, mi: f64, p: OperatingPoint) -> Vec<CoreActivity> {
        vec![
            CoreActivity {
                activity,
                memory_intensity: mi,
                point: p,
            };
            8
        ]
    }

    fn uncore(llc: f64, mc: f64, p: OperatingPoint) -> UncoreActivity {
        UncoreActivity {
            llc,
            mc: [mc; 4],
            noc: mc,
            point: p,
        }
    }

    #[test]
    fn envelope_matches_paper_8_to_24_w() {
        let m = ProcessorPowerModel::paper_default();
        let p = m.dvfs().reference();
        let hot = m
            .total_power(
                &all_cores(1.0, 0.1, p),
                &uncore(0.6, 0.3, p),
                Celsius::new(95.0),
            )
            .get();
        assert!((20.0..25.0).contains(&hot), "compute-bound {hot} W");
        let cold = m
            .total_power(
                &all_cores(0.22, 0.9, p),
                &uncore(0.5, 0.8, p),
                Celsius::new(75.0),
            )
            .get();
        assert!((7.0..12.0).contains(&cold), "memory-bound {cold} W");
    }

    #[test]
    fn power_monotone_in_frequency() {
        let m = ProcessorPowerModel::paper_default();
        let mut prev = 0.0;
        for point in m.dvfs().points() {
            let w = m.total_power(
                &all_cores(0.8, 0.3, point),
                &uncore(0.5, 0.4, point),
                Celsius::new(80.0),
            );
            assert!(w > prev, "{w} at {point:?}");
            prev = w.get();
        }
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = ProcessorPowerModel::paper_default();
        let p = m.dvfs().reference();
        let idle = all_cores(0.0, 0.0, p);
        let w_cool = m.total_power(&idle, &uncore(0.0, 0.0, p), Celsius::new(50.0));
        let w_hot = m.total_power(&idle, &uncore(0.0, 0.0, p), Celsius::new(100.0));
        assert!(w_hot > w_cool);
    }

    #[test]
    fn per_core_points_differ() {
        let m = ProcessorPowerModel::paper_default();
        let base = m.dvfs().reference();
        let fast = m.dvfs().point_at(3.5);
        let mut cores = all_cores(0.8, 0.2, base);
        cores[2].point = fast;
        let powers = m.block_powers(&cores, &uncore(0.5, 0.3, base), Celsius::new(80.0));
        let sum_core = |id: usize| -> f64 {
            powers
                .iter()
                .filter(|(n, _)| n.starts_with(&format!("core{id}_")))
                .map(|(_, w)| w.get())
                .sum()
        };
        assert!(
            sum_core(3) > 1.5 * sum_core(1),
            "{} vs {}",
            sum_core(3),
            sum_core(1)
        );
    }

    #[test]
    fn block_names_match_floorplan_vocabulary() {
        let m = ProcessorPowerModel::paper_default();
        let p = m.dvfs().reference();
        let powers = m.block_powers(
            &all_cores(0.5, 0.5, p),
            &uncore(0.5, 0.5, p),
            Celsius::new(80.0),
        );
        assert_eq!(powers.len(), 8 * 9 + 2 + 4 + 2 + 1);
        assert!(powers.iter().any(|(n, _)| n == "core8_fpu"));
        assert!(powers.iter().any(|(n, _)| n == "tsv_bus"));
        for (_, w) in &powers {
            assert!(*w >= 0.0);
        }
    }

    #[test]
    fn compute_bound_fpu_is_hotter_than_memory_bound() {
        let m = ProcessorPowerModel::paper_default();
        let p = m.dvfs().reference();
        let get = |mi: f64| -> Watts {
            m.block_powers(
                &all_cores(0.9, mi, p),
                &uncore(0.5, 0.5, p),
                Celsius::new(80.0),
            )
            .iter()
            .find(|(n, _)| n == "core1_fpu")
            .expect("core1_fpu present in block powers")
            .1
        };
        assert!(get(0.0) > get(1.0));
    }
}
