//! Per-block power fractions of a 4-issue out-of-order core.
//!
//! The fractions are McPAT-shaped: execution units (ALU cluster and FPU)
//! dominate dynamic power for compute-bound code, the load/store unit and
//! caches dominate for memory-bound code. The thermal model cares about
//! *where* the watts land, so two profiles are provided and blended by the
//! workload's memory intensity.

/// The 9 sub-blocks of a core, matching
/// `xylem_stack::proc_die::CORE_BLOCKS` (execution cluster first — it
/// occupies the core row facing the die center).
pub const CORE_BLOCKS: [&str; 9] = [
    "alu", "fpu", "l1d", "rf", "issue", "lsu", "fetch", "decode", "l1i",
];

/// Dynamic-power fractions for fully compute-bound execution (sum = 1).
pub const COMPUTE_FRACTIONS: [f64; 9] = [
    0.15, // integer execution
    0.17, // fpu
    0.08, // l1d
    0.12, // register files
    0.14, // issue queue + ROB
    0.12, // lsu
    0.08, // fetch
    0.06, // decode/rename
    0.08, // l1i
];

/// Dynamic-power fractions for fully memory-bound execution (sum = 1).
pub const MEMORY_FRACTIONS: [f64; 9] = [
    0.10, // integer execution
    0.06, // fpu
    0.26, // l1d
    0.08, // register files
    0.10, // issue queue + ROB
    0.22, // lsu
    0.07, // fetch
    0.05, // decode/rename
    0.06, // l1i
];

/// Leakage is proportional to area; every sub-block occupies one cell of
/// the 3x3 core grid, so leakage fractions are uniform.
pub const LEAKAGE_FRACTION: f64 = 1.0 / 9.0;

/// Per-block dynamic fractions for a workload with the given memory
/// intensity (0 = compute-bound, 1 = memory-bound).
///
/// # Panics
///
/// Panics if `memory_intensity` is outside `[0, 1]`.
pub fn dynamic_fractions(memory_intensity: f64) -> [f64; 9] {
    assert!(
        (0.0..=1.0).contains(&memory_intensity),
        "memory intensity {memory_intensity} outside [0, 1]"
    );
    let mut out = [0.0; 9];
    for i in 0..9 {
        out[i] = (1.0 - memory_intensity) * COMPUTE_FRACTIONS[i]
            + memory_intensity * MEMORY_FRACTIONS[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let c: f64 = COMPUTE_FRACTIONS.iter().sum();
        let m: f64 = MEMORY_FRACTIONS.iter().sum();
        assert!((c - 1.0).abs() < 1e-12, "{c}");
        assert!((m - 1.0).abs() < 1e-12, "{m}");
        for mi in [0.0, 0.3, 0.7, 1.0] {
            let s: f64 = dynamic_fractions(mi).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fpu_dominates_compute_lsu_dominates_memory() {
        let fpu = CORE_BLOCKS.iter().position(|&b| b == "fpu").unwrap();
        let lsu = CORE_BLOCKS.iter().position(|&b| b == "lsu").unwrap();
        let c = dynamic_fractions(0.0);
        let m = dynamic_fractions(1.0);
        assert_eq!(c.iter().cloned().fold(0.0, f64::max), c[fpu]);
        assert!(m[lsu] > c[lsu]);
        assert!(m[fpu] < c[fpu]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_intensity_panics() {
        let _ = dynamic_fractions(1.5);
    }
}
