//! The line-delimited client protocol.
//!
//! One JSON object per line in, one or more JSON lines out. The same
//! loop serves stdio (`xylem serve --stdio`) and a local Unix socket
//! (`xylem serve --socket PATH`); it is transport-agnostic over any
//! `BufRead`/`Write` pair.
//!
//! Requests:
//!
//! ```text
//! {"cmd":"submit","tenant":"a","scenario":"...","steps":8,"dt_s":1e-3,
//!  "frame_every":2,"power_scale":1.0,"trip_c":80.0,"deadline_ms":500}
//! {"cmd":"tick","n":4}         run n scheduler ticks (default 1)
//! {"cmd":"run","max_ticks":N}  tick until all sessions settle
//! {"cmd":"drain","id":7}       stream session 7's buffered lines
//! {"cmd":"status"}             server status counts
//! {"cmd":"shutdown"}           stop serving this connection
//! ```
//!
//! Every response line carries `"ok"`. A rejected submission is
//! `ok: true` with `"admitted": false` and a `retry_after_ms` hint —
//! backpressure is a protocol outcome, not a transport error.

use std::io::{BufRead, Write};

use serde::{Map, Number, Value};

use crate::error::ServeError;
use crate::scheduler::{Server, Submission, SubmitParams};

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn vstr(s: &str) -> Value {
    Value::String(s.to_string())
}

fn vu64(x: u64) -> Value {
    Value::Number(Number::U64(x))
}

fn get<'a>(m: &'a Map, key: &str) -> Option<&'a Value> {
    m.get(key)
}

fn get_u64(m: &Map, key: &str) -> Option<u64> {
    match get(m, key) {
        Some(Value::Number(n)) => n.try_as::<u64>(),
        _ => None,
    }
}

fn get_f64(m: &Map, key: &str) -> Option<f64> {
    match get(m, key) {
        Some(Value::Number(n)) => Some(n.as_f64()),
        _ => None,
    }
}

fn get_str<'a>(m: &'a Map, key: &str) -> Option<&'a str> {
    get(m, key).and_then(Value::as_str)
}

/// Parses one submit request into its parameters.
fn submit_params(m: &Map) -> Result<SubmitParams, String> {
    let d = SubmitParams::default();
    Ok(SubmitParams {
        steps: get_u64(m, "steps").map_or(Ok(d.steps), |x| {
            u32::try_from(x).map_err(|_| format!("steps {x} out of range"))
        })?,
        dt_s: get_f64(m, "dt_s").unwrap_or(d.dt_s),
        frame_every: get_u64(m, "frame_every").map_or(Ok(d.frame_every), |x| {
            u32::try_from(x).map_err(|_| format!("frame_every {x} out of range"))
        })?,
        power_scale: get_f64(m, "power_scale").unwrap_or(d.power_scale),
        trip_c: get_f64(m, "trip_c"),
        deadline_ms: get_u64(m, "deadline_ms"),
    })
}

/// Handles one parsed request; returns the response lines.
///
/// # Errors
///
/// [`ServeError`] only for server-side faults (spool I/O); malformed
/// requests produce an `ok: false` response line instead.
pub fn handle(server: &mut Server, request: &Value) -> Result<Vec<String>, ServeError> {
    let err_line = |msg: String| {
        Ok(vec![render(&obj(vec![
            ("ok", Value::Bool(false)),
            ("error", vstr(&msg)),
        ]))])
    };
    let Some(m) = request.as_object() else {
        return err_line("request must be a JSON object".to_string());
    };
    let Some(cmd) = get_str(m, "cmd") else {
        return err_line("missing \"cmd\"".to_string());
    };
    match cmd {
        "submit" => {
            let Some(tenant) = get_str(m, "tenant") else {
                return err_line("submit requires \"tenant\"".to_string());
            };
            let Some(scenario) = get_str(m, "scenario") else {
                return err_line("submit requires \"scenario\"".to_string());
            };
            let params = match submit_params(m) {
                Ok(p) => p,
                Err(e) => return err_line(e),
            };
            let line = match server.submit(tenant, scenario, &params)? {
                Submission::Admitted(id) => obj(vec![
                    ("ok", Value::Bool(true)),
                    ("admitted", Value::Bool(true)),
                    ("id", vu64(id)),
                ]),
                Submission::Rejected(r) => obj(vec![
                    ("ok", Value::Bool(true)),
                    ("admitted", Value::Bool(false)),
                    ("reason", vstr(&r.reason)),
                    ("retry_after_ms", r.retry_after_ms.map_or(Value::Null, vu64)),
                ]),
            };
            Ok(vec![render(&line)])
        }
        "tick" => {
            let n = get_u64(m, "n").unwrap_or(1);
            let mut applied = 0usize;
            for _ in 0..n {
                applied += server.tick()?;
            }
            Ok(vec![render(&obj(vec![
                ("ok", Value::Bool(true)),
                ("tick", vu64(server.status().tick)),
                ("applied", vu64(applied as u64)),
            ]))])
        }
        "run" => {
            let max = get_u64(m, "max_ticks").unwrap_or(100_000);
            server.run_until_settled(max)?;
            Ok(vec![render(&obj(vec![
                ("ok", Value::Bool(true)),
                ("tick", vu64(server.status().tick)),
            ]))])
        }
        "drain" => {
            let Some(id) = get_u64(m, "id") else {
                return err_line("drain requires \"id\"".to_string());
            };
            let mut lines = server.drain_output(id);
            lines.push(render(&obj(vec![
                ("ok", Value::Bool(true)),
                ("drained", vu64(lines.len() as u64)),
            ])));
            Ok(lines)
        }
        "status" => {
            let st = server.status();
            Ok(vec![render(&obj(vec![
                ("ok", Value::Bool(true)),
                ("tick", vu64(st.tick)),
                ("active", vu64(st.active as u64)),
                ("runnable", vu64(st.runnable as u64)),
                ("done", vu64(st.done as u64)),
                ("quarantined", vu64(st.quarantined as u64)),
            ]))])
        }
        "shutdown" => Ok(vec![render(&obj(vec![
            ("ok", Value::Bool(true)),
            ("bye", Value::Bool(true)),
        ]))]),
        other => err_line(format!("unknown cmd {other:?}")),
    }
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_default()
}

/// Serves one client over a line-delimited transport until `shutdown`,
/// EOF, or a server-side fault.
///
/// # Errors
///
/// [`ServeError`] for transport I/O or spool faults.
pub fn serve_lines(
    server: &mut Server,
    reader: impl BufRead,
    mut writer: impl Write,
) -> Result<(), ServeError> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request: Value = match serde_json::from_str(&line) {
            Ok(v) => v,
            Err(e) => {
                let resp = render(&obj(vec![
                    ("ok", Value::Bool(false)),
                    ("error", vstr(&format!("bad request JSON: {e}"))),
                ]));
                writeln!(writer, "{resp}")?;
                continue;
            }
        };
        let is_shutdown = request
            .as_object()
            .and_then(|m| get_str(m, "cmd"))
            .is_some_and(|c| c == "shutdown");
        for resp in handle(server, &request)? {
            writeln!(writer, "{resp}")?;
        }
        writer.flush()?;
        if is_shutdown {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServerConfig;
    use std::path::PathBuf;

    const MINIMAL: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 4 , 4 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
output :
    probe hot max in body ;
";

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xylem-serve-proto-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stdio_round_trip_submit_run_drain() {
        let dir = tmp("roundtrip");
        let mut cfg = ServerConfig::new(&dir);
        cfg.workers = 0;
        let (mut server, _) = Server::open(cfg).expect("open");
        let scenario = MINIMAL.replace('\n', "\\n").replace('"', "\\\"");
        let input = format!(
            concat!(
                "{{\"cmd\":\"submit\",\"tenant\":\"a\",\"scenario\":\"{}\",\"steps\":4}}\n",
                "{{\"cmd\":\"run\"}}\n",
                "{{\"cmd\":\"drain\",\"id\":1}}\n",
                "{{\"cmd\":\"status\"}}\n",
                "{{\"cmd\":\"shutdown\"}}\n",
            ),
            scenario
        );
        let mut out = Vec::new();
        serve_lines(&mut server, input.as_bytes(), &mut out).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].contains("\"admitted\":true") && lines[0].contains("\"id\":1"),
            "{}",
            lines[0]
        );
        assert!(text.contains("\"record\":\"frame\""), "{text}");
        assert!(text.contains("\"kind\":\"done\""), "{text}");
        assert!(text.contains("\"done\":1"), "{text}");
        assert!(lines.last().is_some_and(|l| l.contains("\"bye\":true")));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_answer_errors_and_keep_serving() {
        let dir = tmp("badlines");
        let mut cfg = ServerConfig::new(&dir);
        cfg.workers = 0;
        let (mut server, _) = Server::open(cfg).expect("open");
        let input = "not json\n{\"cmd\":\"nope\"}\n{\"cmd\":\"status\"}\n";
        let mut out = Vec::new();
        serve_lines(&mut server, input.as_bytes(), &mut out).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[1].contains("unknown cmd"));
        assert!(lines[2].contains("\"ok\":true"));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
