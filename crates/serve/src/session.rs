//! Session model: specs, resumable state, shared compiled scenarios,
//! and the slice runner that the scheduler dispatches to the pool.
//!
//! A session is a transient thermal simulation chopped into *slices*:
//! each slice advances the field by one frame stride of backward-Euler
//! steps and emits exactly one temperature frame. Slice boundaries are
//! pure bookkeeping — backward Euler with a warm start is invariant
//! under splitting `k` steps into `k1 + k2` from the intermediate state
//! — so a session resumed from a checkpoint recomputes bit-identical
//! frames no matter where the crash landed.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, Weak};

use serde::{Deserialize, Serialize};
use xylem_scenario::digest::field_digest;
use xylem_thermal::error::ThermalError;
use xylem_thermal::model::ThermalModel;
use xylem_thermal::power::PowerMap;
use xylem_thermal::solve::{DeadlineGuard, SolverWorkspace};
use xylem_thermal::temperature::TemperatureField;

use crate::chaos::{fnv1a, fnv1a_extend, ChaosConfig, ChaosOutcome, CHAOS_PANIC_MARKER};
use crate::error::{Rejection, ServeError};

/// Number of throttle levels the serve-side DTM ladder distinguishes.
pub const THROTTLE_LEVELS: u8 = 4;

/// Power derate per throttle level: level `l` scales power by
/// `1 - 0.2 l`, mirroring the DVFS ladder's coarse steps.
pub const THROTTLE_DERATE_PER_LEVEL: f64 = 0.2;

/// Hysteresis band below the trip point before a level is released.
pub const THROTTLE_RELEASE_BAND_C: f64 = 2.0;

/// Immutable per-session submission parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Server-assigned session id (unique within a spool).
    pub id: u64,
    /// Owning tenant (admission quotas are per-tenant).
    pub tenant: String,
    /// Stable hash of the `.stk` source this session runs.
    pub source_key: u64,
    /// Total backward-Euler steps to run.
    pub steps: u32,
    /// Step size, seconds.
    pub dt_s: f64,
    /// Requested steps per emitted frame (the initial frame stride).
    pub frame_every: u32,
    /// Uniform multiplier on the scenario's bound power.
    pub power_scale: f64,
    /// Serve-side throttle trip point, deg C (None = never throttle).
    pub trip_c: Option<f64>,
    /// Per-slice compute budget, wall-clock ms (None = unbounded).
    pub deadline_ms: Option<u64>,
}

impl SessionSpec {
    /// Stable key for chaos decisions and fair hashing.
    pub fn chaos_key(&self) -> u64 {
        fnv1a_extend(fnv1a(self.tenant.as_bytes()), self.id)
    }
}

/// The resumable state of a session. This struct *is* the checkpoint
/// payload: everything the slice runner reads lives here, so restoring
/// it restores the computation bit-exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// Steps completed so far.
    pub step: u32,
    /// Raw temperature field at `step` (empty = start from ambient).
    pub temps: Vec<f64>,
    /// Current throttle level, `0..THROTTLE_LEVELS`.
    pub level: u8,
    /// Frames emitted so far (also the next frame index).
    pub frames: u32,
    /// FNV-1a chain over every emitted frame's `(step, digest)`.
    pub chain: u64,
    /// Current steps-per-frame (doubled by economy degradation).
    pub frame_stride: u32,
    /// Deadline misses so far (drives the degradation ladder).
    pub deadline_misses: u32,
    /// Failed slice attempts (panics + solver errors) so far.
    pub attempts: u32,
}

impl SessionState {
    /// Fresh state for a just-admitted session.
    pub fn fresh(spec: &SessionSpec) -> Self {
        SessionState {
            step: 0,
            temps: Vec::new(),
            level: 0,
            frames: 0,
            chain: fnv1a(b"xylem-serve-frame-chain"),
            frame_stride: spec.frame_every.max(1),
            deadline_misses: 0,
            attempts: 0,
        }
    }

    /// Whether the session has run all its steps.
    pub fn is_complete(&self, spec: &SessionSpec) -> bool {
        self.step >= spec.steps
    }
}

/// One emitted temperature frame (the streamed unit of progress).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Session the frame belongs to.
    pub id: u64,
    /// Zero-based frame index within the session.
    pub idx: u32,
    /// Step count after this frame's slice.
    pub step: u32,
    /// Global hotspot after the slice, deg C.
    pub hot_c: f64,
    /// FNV-1a digest of the full temperature field.
    pub digest: u64,
    /// Chain digest over all frames up to and including this one.
    pub chain: u64,
    /// Throttle level the slice ran at.
    pub level: u8,
}

/// A compiled scenario shared by every session submitted with an
/// identical `.stk` source: one discretized model (with its internal
/// transient-operator cache) and the scenario's bound power map.
pub struct SharedModel {
    /// The discretized thermal model.
    pub model: ThermalModel,
    /// Unscaled power map from the scenario's `power` section.
    pub base_power: PowerMap,
}

/// Registry of shared models, keyed by source hash. Holds sources
/// strongly (they are small and needed for crash recovery) and models
/// weakly (a suspended or finished fleet frees its memory).
pub struct ModelRegistry {
    sources: BTreeMap<u64, String>,
    cache: Mutex<BTreeMap<u64, Weak<SharedModel>>>,
}

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            sources: BTreeMap::new(),
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Validates a source at admission time and registers it.
    ///
    /// Compiling (parse + lower, no discretization) here means a
    /// malformed scenario is a *permanent* rejection at submit, not a
    /// runtime quarantine after it was queued.
    ///
    /// # Errors
    ///
    /// A permanent [`Rejection`] carrying the first parse diagnostic.
    pub fn register(&mut self, source: &str) -> Result<u64, Rejection> {
        let key = fnv1a(source.as_bytes());
        if self.sources.contains_key(&key) {
            return Ok(key);
        }
        xylem_scenario::compile(source)
            .map_err(|e| Rejection::permanent(format!("scenario does not compile: {e}")))?;
        self.sources.insert(key, source.to_string());
        Ok(key)
    }

    /// Re-registers a source recovered from the spool without
    /// revalidating (it was validated when first admitted).
    pub fn restore(&mut self, key: u64, source: String) {
        self.sources.insert(key, source);
    }

    /// The registered source text for `key`, if any.
    pub fn source(&self, key: u64) -> Option<&str> {
        self.sources.get(&key).map(String::as_str)
    }

    /// Materializes (or re-uses) the shared model for `key`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for an unknown key, or a wrapped
    /// [`ThermalError`] if discretization fails.
    pub fn acquire(&self, key: u64) -> Result<Arc<SharedModel>, ServeError> {
        if let Some(m) = lock_or_recover(&self.cache)
            .get(&key)
            .and_then(Weak::upgrade)
        {
            return Ok(m);
        }
        let source = self
            .sources
            .get(&key)
            .ok_or_else(|| ServeError::Protocol(format!("unknown source key {key:#x}")))?;
        let lowered = xylem_scenario::compile(source).map_err(|e| {
            ServeError::Protocol(format!("registered source stopped compiling: {e}"))
        })?;
        let (model, base_power) = xylem_scenario::discretize_with_power(&lowered)?;
        let shared = Arc::new(SharedModel { model, base_power });
        lock_or_recover(&self.cache).insert(key, Arc::downgrade(&shared));
        Ok(shared)
    }
}

/// Everything one slice execution needs, snapshotted at dispatch. The
/// scheduler keeps its own copy of the state; on any failure the
/// snapshot here is simply dropped, so a panicking slice can never
/// poison the authoritative session state.
pub struct SliceRequest {
    /// The shared compiled scenario.
    pub shared: Arc<SharedModel>,
    /// Session parameters.
    pub spec: SessionSpec,
    /// State snapshot the slice starts from.
    pub state: SessionState,
    /// Fault injection, if the server runs in chaos mode.
    pub chaos: Option<ChaosConfig>,
}

/// What one slice attempt produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceOutcome {
    /// The slice ran: new state plus the one frame it emitted.
    Advanced {
        /// Post-slice session state.
        state: SessionState,
        /// The emitted frame.
        frame: FrameRecord,
    },
    /// The slice blew its wall-clock budget; state unchanged.
    DeadlineMiss,
    /// The solver failed; state unchanged.
    Failed {
        /// Display of the underlying error.
        error: String,
    },
    /// The slice panicked (filled in by the scheduler's
    /// `catch_unwind`); state unchanged.
    Panicked {
        /// Downcast panic payload.
        message: String,
    },
}

/// Throttle factor for a level.
fn derate(level: u8) -> f64 {
    1.0 - THROTTLE_DERATE_PER_LEVEL * f64::from(level)
}

/// Runs one slice. May panic (chaos injection or a genuine bug): the
/// caller is required to wrap this in `catch_unwind`.
pub fn run_slice(req: &SliceRequest) -> SliceOutcome {
    if let Some(chaos) = &req.chaos {
        match chaos.decide(
            req.spec.chaos_key(),
            u64::from(req.state.step),
            req.state.attempts,
        ) {
            ChaosOutcome::None => {}
            ChaosOutcome::Panic => panic!(
                "{CHAOS_PANIC_MARKER} (session {}, step {}, attempt {})",
                req.spec.id, req.state.step, req.state.attempts
            ),
            ChaosOutcome::Error => {
                return SliceOutcome::Failed {
                    error: "chaos: injected solver error".to_string(),
                }
            }
            ChaosOutcome::Deadline => return SliceOutcome::DeadlineMiss,
        }
    }

    let model = &req.shared.model;
    let stride = req.state.frame_stride.max(1);
    let remaining = req.spec.steps.saturating_sub(req.state.step);
    let k = stride.min(remaining).max(1) as usize;

    let mut power = req.shared.base_power.clone();
    power.scale(req.spec.power_scale * derate(req.state.level));

    let initial = if req.state.temps.is_empty() {
        TemperatureField::uniform(model, model.ambient())
    } else {
        match TemperatureField::from_raw(model, req.state.temps.clone()) {
            Ok(f) => f,
            Err(e) => {
                return SliceOutcome::Failed {
                    error: format!("checkpointed field rejected: {e}"),
                }
            }
        }
    };

    let _deadline = req.spec.deadline_ms.map(|ms| {
        DeadlineGuard::install(std::time::Instant::now() + std::time::Duration::from_millis(ms))
    });

    let mut ws = SolverWorkspace::new();
    let t = match model.transient_with(&power, &initial, req.spec.dt_s, k, None, &mut ws) {
        Ok(t) => t,
        Err(ThermalError::DeadlineExceeded { .. }) => return SliceOutcome::DeadlineMiss,
        Err(e) => {
            return SliceOutcome::Failed {
                error: e.to_string(),
            }
        }
    };

    let mut state = req.state.clone();
    state.step += k as u32;
    state.temps = t.raw().to_vec();
    let digest = field_digest(t.raw());
    state.chain = fnv1a_extend(fnv1a_extend(state.chain, u64::from(state.step)), digest);
    let frame = FrameRecord {
        id: req.spec.id,
        idx: state.frames,
        step: state.step,
        hot_c: t.global_hotspot().2.get(),
        digest,
        chain: state.chain,
        level: state.level,
    };
    state.frames += 1;

    // Serve-side thermal throttle: derate power when the frame hotspot
    // trips, release with hysteresis once it cools.
    if let Some(trip) = req.spec.trip_c {
        if frame.hot_c > trip && state.level + 1 < THROTTLE_LEVELS {
            state.level += 1;
        } else if frame.hot_c < trip - THROTTLE_RELEASE_BAND_C && state.level > 0 {
            state.level -= 1;
        }
    }

    SliceOutcome::Advanced { state, frame }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 4 , 4 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
output :
    probe hot max in body ;
";

    fn spec(registry: &mut ModelRegistry) -> SessionSpec {
        let key = registry.register(MINIMAL).expect("compiles");
        SessionSpec {
            id: 1,
            tenant: "t0".to_string(),
            source_key: key,
            steps: 6,
            dt_s: 1e-3,
            frame_every: 2,
            power_scale: 1.0,
            trip_c: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn slices_compose_bit_identically_regardless_of_boundaries() {
        let mut registry = ModelRegistry::new();
        let spec = spec(&mut registry);
        let shared = registry.acquire(spec.source_key).expect("discretizes");

        // Reference: run to completion slice by slice (stride 2).
        let mut state = SessionState::fresh(&spec);
        let mut frames = Vec::new();
        while !state.is_complete(&spec) {
            match run_slice(&SliceRequest {
                shared: Arc::clone(&shared),
                spec: spec.clone(),
                state: state.clone(),
                chaos: None,
            }) {
                SliceOutcome::Advanced { state: s, frame } => {
                    state = s;
                    frames.push(frame);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(state.step, 6);

        // Same run, resumed: recompute the last slice from the
        // second frame's checkpointed state; the frame must match
        // bit for bit (this is the crash-recovery invariant).
        let mut mid = SessionState::fresh(&spec);
        for _ in 0..2 {
            if let SliceOutcome::Advanced { state: s, .. } = run_slice(&SliceRequest {
                shared: Arc::clone(&shared),
                spec: spec.clone(),
                state: mid.clone(),
                chaos: None,
            }) {
                mid = s;
            }
        }
        let redone = match run_slice(&SliceRequest {
            shared: Arc::clone(&shared),
            spec: spec.clone(),
            state: mid,
            chaos: None,
        }) {
            SliceOutcome::Advanced { frame, .. } => frame,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(redone, frames[2]);
    }

    #[test]
    fn identical_sources_share_one_model() {
        let mut registry = ModelRegistry::new();
        let k1 = registry.register(MINIMAL).expect("compiles");
        let k2 = registry.register(MINIMAL).expect("compiles");
        assert_eq!(k1, k2);
        let a = registry.acquire(k1).expect("ok");
        let b = registry.acquire(k2).expect("ok");
        assert!(Arc::ptr_eq(&a, &b), "same source must share the model");
    }

    #[test]
    fn malformed_source_is_a_permanent_rejection() {
        let mut registry = ModelRegistry::new();
        let r = registry.register("material ;").expect_err("must reject");
        assert!(!r.is_transient());
    }

    #[test]
    fn zero_deadline_reports_miss_not_panic() {
        let mut registry = ModelRegistry::new();
        let mut spec = spec(&mut registry);
        spec.deadline_ms = Some(0);
        let shared = registry.acquire(spec.source_key).expect("ok");
        let out = run_slice(&SliceRequest {
            shared,
            state: SessionState::fresh(&spec),
            spec,
            chaos: None,
        });
        assert_eq!(out, SliceOutcome::DeadlineMiss);
    }
}
