//! The durable spool: everything the server must not lose.
//!
//! Layout under the spool directory:
//!
//! ```text
//! spool/
//!   manifest.jsonl      submit / done / quarantine records
//!   frames.jsonl        every emitted temperature frame
//!   sources/<key>.stk   scenario sources, one file per distinct hash
//!   ckpt/<id>.ckpt      per-session state checkpoints (envelope format)
//! ```
//!
//! Crash-only discipline: both journals are append-only, written line
//! by line with an fsync *before* the checkpoint that supersedes the
//! line's slice. A torn tail (the one partially-written line a SIGKILL
//! can leave) is detected on open and physically truncated before
//! appends resume; mid-file corruption, by contrast, is an error —
//! silent data loss in the middle of a journal means the storage lied,
//! and resuming over it would fabricate history.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use xylem::checkpoint::{load_payload, save_payload};
use xylem::error::CheckpointError;

use crate::error::ServeError;
use crate::session::{FrameRecord, SessionSpec, SessionState};

/// A `submit` manifest record (the spec plus its record tag).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SubmitRecord {
    record: String,
    id: u64,
    tenant: String,
    source_key: u64,
    steps: u32,
    dt_s: f64,
    frame_every: u32,
    power_scale: f64,
    trip_c: Option<f64>,
    deadline_ms: Option<u64>,
}

/// A `done` manifest record: the terminal digest a verifier compares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoneRecord {
    record: String,
    /// Completed session.
    pub id: u64,
    /// Final step count.
    pub step: u32,
    /// Frames emitted over the whole run.
    pub frames: u32,
    /// FNV-1a digest of the final temperature field.
    pub final_digest: u64,
    /// Frame chain digest at completion.
    pub chain: u64,
}

/// A `quarantine` manifest record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuarantineRecord {
    record: String,
    id: u64,
    reason: String,
}

/// Tagged frame line in `frames.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FrameLine {
    record: String,
    id: u64,
    idx: u32,
    step: u32,
    hot_c: f64,
    digest: u64,
    chain: u64,
    level: u8,
}

/// What a spool scan recovered.
#[derive(Debug, Default)]
pub struct SpoolScan {
    /// Every admitted spec, in submit order.
    pub submits: Vec<SessionSpec>,
    /// Sessions with a durable `done` record.
    pub done: BTreeMap<u64, DoneRecord>,
    /// Sessions with a durable `quarantine` record.
    pub quarantined: BTreeSet<u64>,
    /// Per-session count of durable frames (max index + 1).
    pub durable_frames: BTreeMap<u64, u32>,
    /// Recovered `(key, source)` pairs.
    pub sources: Vec<(u64, String)>,
    /// Highest session id ever admitted (0 if none).
    pub max_id: u64,
}

/// The server's durable storage handle.
pub struct Spool {
    dir: PathBuf,
    manifest: File,
    frames: File,
    /// Whether appends fsync before returning (tests may relax this;
    /// the crash drill requires it on).
    sync: bool,
}

fn io_ctx(e: std::io::Error, path: &Path) -> ServeError {
    ServeError::Io(std::io::Error::new(
        e.kind(),
        format!("{}: {e}", path.display()),
    ))
}

/// Scans a journal file: returns its parsed lines and the byte length
/// of the valid prefix. Only a *trailing* unparsable fragment is
/// tolerated (and reported for truncation).
fn scan_lines(path: &Path) -> Result<(Vec<String>, u64, bool), ServeError> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text).map_err(|e| io_ctx(e, path))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0, false)),
        Err(e) => return Err(io_ctx(e, path)),
    }
    let mut lines = Vec::new();
    let mut valid_len = 0u64;
    let mut torn = false;
    let mut offset = 0usize;
    for raw in text.split_inclusive('\n') {
        let complete = raw.ends_with('\n');
        let line = raw.trim_end_matches('\n');
        let parses = !line.trim().is_empty() && serde_json::from_str::<serde::Value>(line).is_ok();
        if complete && parses {
            lines.push(line.to_string());
            valid_len = (offset + raw.len()) as u64;
        } else if complete {
            // A complete but unparsable line mid-file is corruption.
            return Err(ServeError::Corrupt {
                source: path.display().to_string(),
                detail: format!("unparsable record at byte {offset}"),
            });
        } else {
            // Incomplete final line: the torn tail.
            torn = true;
        }
        offset += raw.len();
    }
    Ok((lines, valid_len, torn))
}

/// Opens (appending, creating) a journal after truncating a torn tail.
fn open_journal(path: &Path) -> Result<(Vec<String>, File), ServeError> {
    let (lines, valid_len, torn) = scan_lines(path)?;
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_ctx(e, path))?;
    if torn {
        file.set_len(valid_len).map_err(|e| io_ctx(e, path))?;
        file.sync_all().map_err(|e| io_ctx(e, path))?;
    }
    Ok((lines, file))
}

impl Spool {
    /// Opens (or creates) a spool directory, recovering every durable
    /// record. Torn journal tails are truncated; everything else must
    /// parse.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failure, [`ServeError::Corrupt`]
    /// on mid-journal damage.
    pub fn open(dir: &Path, sync: bool) -> Result<(Spool, SpoolScan), ServeError> {
        std::fs::create_dir_all(dir.join("sources")).map_err(|e| io_ctx(e, dir))?;
        std::fs::create_dir_all(dir.join("ckpt")).map_err(|e| io_ctx(e, dir))?;

        let manifest_path = dir.join("manifest.jsonl");
        let frames_path = dir.join("frames.jsonl");
        let (manifest_lines, manifest) = open_journal(&manifest_path)?;
        let (frame_lines, frames) = open_journal(&frames_path)?;

        let mut scan = SpoolScan::default();
        for line in &manifest_lines {
            let v: serde::Value = serde_json::from_str(line).map_err(|e| ServeError::Corrupt {
                source: manifest_path.display().to_string(),
                detail: e.to_string(),
            })?;
            let tag = v
                .as_object()
                .and_then(|m| m.get("record"))
                .and_then(serde::Value::as_str)
                .unwrap_or("");
            match tag {
                "submit" => {
                    let r: SubmitRecord =
                        serde_json::from_str(line).map_err(|e| ServeError::Corrupt {
                            source: manifest_path.display().to_string(),
                            detail: e.to_string(),
                        })?;
                    scan.max_id = scan.max_id.max(r.id);
                    scan.submits.push(SessionSpec {
                        id: r.id,
                        tenant: r.tenant,
                        source_key: r.source_key,
                        steps: r.steps,
                        dt_s: r.dt_s,
                        frame_every: r.frame_every,
                        power_scale: r.power_scale,
                        trip_c: r.trip_c,
                        deadline_ms: r.deadline_ms,
                    });
                }
                "done" => {
                    let r: DoneRecord =
                        serde_json::from_str(line).map_err(|e| ServeError::Corrupt {
                            source: manifest_path.display().to_string(),
                            detail: e.to_string(),
                        })?;
                    scan.done.insert(r.id, r);
                }
                "quarantine" => {
                    let r: QuarantineRecord =
                        serde_json::from_str(line).map_err(|e| ServeError::Corrupt {
                            source: manifest_path.display().to_string(),
                            detail: e.to_string(),
                        })?;
                    scan.quarantined.insert(r.id);
                }
                other => {
                    return Err(ServeError::Corrupt {
                        source: manifest_path.display().to_string(),
                        detail: format!("unknown record tag {other:?}"),
                    })
                }
            }
        }
        for line in &frame_lines {
            let r: FrameLine = serde_json::from_str(line).map_err(|e| ServeError::Corrupt {
                source: frames_path.display().to_string(),
                detail: e.to_string(),
            })?;
            let durable = scan.durable_frames.entry(r.id).or_insert(0);
            *durable = (*durable).max(r.idx + 1);
        }

        // Recover sources.
        for entry in std::fs::read_dir(dir.join("sources")).map_err(|e| io_ctx(e, dir))? {
            let entry = entry.map_err(|e| io_ctx(e, dir))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".stk") {
                if let Ok(key) = u64::from_str_radix(hex, 16) {
                    let mut text = String::new();
                    File::open(entry.path())
                        .and_then(|mut f| f.read_to_string(&mut text))
                        .map_err(|e| io_ctx(e, &entry.path()))?;
                    scan.sources.push((key, text));
                }
            }
        }

        Ok((
            Spool {
                dir: dir.to_path_buf(),
                manifest,
                frames,
                sync,
            },
            scan,
        ))
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn append(&mut self, which: Which, line: &str) -> Result<(), ServeError> {
        let (file, path) = match which {
            Which::Manifest => (&mut self.manifest, self.dir.join("manifest.jsonl")),
            Which::Frames => (&mut self.frames, self.dir.join("frames.jsonl")),
        };
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .map_err(|e| io_ctx(e, &path))?;
        if self.sync {
            file.sync_all().map_err(|e| io_ctx(e, &path))?;
        }
        Ok(())
    }

    /// Durably records a new scenario source (idempotent per key).
    pub fn record_source(&mut self, key: u64, source: &str) -> Result<(), ServeError> {
        let path = self.dir.join("sources").join(format!("{key:016x}.stk"));
        if path.exists() {
            return Ok(());
        }
        let tmp = path.with_extension("stk.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_ctx(e, &tmp))?;
            f.write_all(source.as_bytes())
                .map_err(|e| io_ctx(e, &tmp))?;
            if self.sync {
                f.sync_all().map_err(|e| io_ctx(e, &tmp))?;
            }
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_ctx(e, &path))?;
        Ok(())
    }

    /// Durably records an admission. Must precede any compute for the
    /// session (crash-only: an admitted session is never forgotten).
    pub fn record_submit(&mut self, spec: &SessionSpec) -> Result<(), ServeError> {
        let r = SubmitRecord {
            record: "submit".to_string(),
            id: spec.id,
            tenant: spec.tenant.clone(),
            source_key: spec.source_key,
            steps: spec.steps,
            dt_s: spec.dt_s,
            frame_every: spec.frame_every,
            power_scale: spec.power_scale,
            trip_c: spec.trip_c,
            deadline_ms: spec.deadline_ms,
        };
        let line = serde_json::to_string(&r).map_err(|e| ServeError::Protocol(e.to_string()))?;
        self.append(Which::Manifest, &line)
    }

    /// Durably records a frame. Returns the serialized line so the
    /// scheduler can also stream it to the client buffer.
    pub fn record_frame(&mut self, frame: &FrameRecord) -> Result<String, ServeError> {
        let r = FrameLine {
            record: "frame".to_string(),
            id: frame.id,
            idx: frame.idx,
            step: frame.step,
            hot_c: frame.hot_c,
            digest: frame.digest,
            chain: frame.chain,
            level: frame.level,
        };
        let line = serde_json::to_string(&r).map_err(|e| ServeError::Protocol(e.to_string()))?;
        self.append(Which::Frames, &line)?;
        Ok(line)
    }

    /// Durably records completion.
    pub fn record_done(&mut self, rec: &DoneRecord) -> Result<(), ServeError> {
        let line = serde_json::to_string(rec).map_err(|e| ServeError::Protocol(e.to_string()))?;
        self.append(Which::Manifest, &line)
    }

    /// Builds a `done` record.
    pub fn done_record(id: u64, state: &SessionState) -> DoneRecord {
        DoneRecord {
            record: "done".to_string(),
            id,
            step: state.step,
            frames: state.frames,
            final_digest: crate::chaos::fnv1a(
                &state
                    .temps
                    .iter()
                    .flat_map(|t| t.to_bits().to_le_bytes())
                    .collect::<Vec<u8>>(),
            ),
            chain: state.chain,
        }
    }

    /// Durably records a quarantine.
    pub fn record_quarantine(&mut self, id: u64, reason: &str) -> Result<(), ServeError> {
        let r = QuarantineRecord {
            record: "quarantine".to_string(),
            id,
            reason: reason.to_string(),
        };
        let line = serde_json::to_string(&r).map_err(|e| ServeError::Protocol(e.to_string()))?;
        self.append(Which::Manifest, &line)
    }

    /// Path of a session's checkpoint file.
    pub fn ckpt_path(&self, id: u64) -> PathBuf {
        self.dir.join("ckpt").join(format!("{id}.ckpt"))
    }

    /// Durably checkpoints a session's state (atomic replace + fsync,
    /// via the workspace checkpoint envelope).
    pub fn save_state(&self, id: u64, state: &SessionState) -> Result<(), ServeError> {
        let payload =
            serde_json::to_string(state).map_err(|e| ServeError::Protocol(e.to_string()))?;
        save_payload(&self.ckpt_path(id), &payload)
            .map_err(|e| ServeError::Checkpoint(e.to_string()))
    }

    /// Loads a session's checkpointed state, if one exists.
    ///
    /// # Errors
    ///
    /// [`ServeError::Checkpoint`] if the envelope exists but fails
    /// integrity validation or the payload does not parse.
    pub fn load_state(&self, id: u64) -> Result<Option<SessionState>, ServeError> {
        let path = self.ckpt_path(id);
        if !path.exists() {
            return Ok(None);
        }
        let payload = match load_payload(&path) {
            Ok(p) => p,
            Err(CheckpointError::Io { .. }) if !path.exists() => return Ok(None),
            Err(e) => return Err(ServeError::Checkpoint(e.to_string())),
        };
        let state: SessionState =
            serde_json::from_str(&payload).map_err(|e| ServeError::Checkpoint(e.to_string()))?;
        Ok(Some(state))
    }
}

enum Which {
    Manifest,
    Frames,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xylem-serve-spool-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: u64) -> SessionSpec {
        SessionSpec {
            id,
            tenant: "t".to_string(),
            source_key: 7,
            steps: 4,
            dt_s: 1e-3,
            frame_every: 2,
            power_scale: 1.0,
            trip_c: Some(80.0),
            deadline_ms: None,
        }
    }

    #[test]
    fn records_round_trip_through_reopen() {
        let dir = tmp("roundtrip");
        {
            let (mut spool, scan) = Spool::open(&dir, true).expect("open");
            assert!(scan.submits.is_empty());
            spool.record_source(7, "material ;").expect("source");
            spool.record_submit(&spec(1)).expect("submit");
            spool.record_submit(&spec(2)).expect("submit");
            let mut state = SessionState::fresh(&spec(1));
            state.step = 4;
            state.temps = vec![1.0, 2.0];
            state.frames = 2;
            spool
                .record_frame(&FrameRecord {
                    id: 1,
                    idx: 0,
                    step: 2,
                    hot_c: 50.0,
                    digest: 9,
                    chain: 11,
                    level: 0,
                })
                .expect("frame");
            spool.save_state(1, &state).expect("ckpt");
            spool
                .record_done(&Spool::done_record(1, &state))
                .expect("done");
            spool.record_quarantine(2, "test").expect("quarantine");
        }
        let (spool, scan) = Spool::open(&dir, true).expect("reopen");
        assert_eq!(scan.submits.len(), 2);
        assert_eq!(scan.submits[0], spec(1));
        assert!(scan.done.contains_key(&1));
        assert_eq!(scan.done[&1].frames, 2);
        assert!(scan.quarantined.contains(&2));
        assert_eq!(scan.durable_frames[&1], 1);
        assert_eq!(scan.sources, vec![(7, "material ;".to_string())]);
        assert_eq!(scan.max_id, 2);
        let state = spool.load_state(1).expect("load").expect("present");
        assert_eq!(state.step, 4);
        assert_eq!(state.temps, vec![1.0, 2.0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp("torn");
        {
            let (mut spool, _) = Spool::open(&dir, true).expect("open");
            spool.record_submit(&spec(1)).expect("submit");
        }
        // Simulate a SIGKILL mid-append: a partial line with no newline.
        let path = dir.join("manifest.jsonl");
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"{\"record\":\"submit\",\"id\":9")
            .expect("tear");
        drop(f);
        let (_, scan) = Spool::open(&dir, true).expect("reopen tolerates torn tail");
        assert_eq!(scan.submits.len(), 1);
        assert_eq!(scan.max_id, 1);
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.ends_with('\n'), "tail must be physically truncated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let dir = tmp("corrupt");
        {
            let (mut spool, _) = Spool::open(&dir, true).expect("open");
            spool.record_submit(&spec(1)).expect("submit");
        }
        let path = dir.join("manifest.jsonl");
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"garbage not json\n").expect("append");
        {
            let mut g = OpenOptions::new().append(true).open(&path).expect("open");
            g.write_all(b"{\"record\":\"quarantine\",\"id\":1,\"reason\":\"x\"}\n")
                .expect("append");
        }
        drop(f);
        match Spool::open(&dir, true) {
            Err(ServeError::Corrupt { .. }) => {}
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("expected Corrupt, got Ok"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none_not_error() {
        let dir = tmp("nockpt");
        let (spool, _) = Spool::open(&dir, true).expect("open");
        assert!(spool.load_state(42).expect("ok").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
