//! The chaos/load harness behind `xylem serve --selftest` and the
//! `./ci.sh serve` drill.
//!
//! One call drives a full campaign against a real [`Server`]:
//! thousands of deterministic simulated client submissions across
//! tenants (with retry-on-backpressure loops), seeded fault injection
//! (panics, solver errors, deadline exhaustion), slow-client buffer
//! pressure, and optionally a mid-run SIGKILL of a child server
//! process followed by an in-process resume. It then *verifies* the
//! service contracts — every non-quarantined session completed, its
//! final field bit-identical to a chaos-free reference run, zero
//! duplicate frames after the kill — and reports latency percentiles
//! for the benchmark table.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Map, Number, Value};
use xylem_obs::metrics::{counter, summarize, Counter, Hist};

use crate::chaos::{splitmix64, ChaosConfig};
use crate::error::ServeError;
use crate::scheduler::{Server, ServerConfig, Submission, SubmitParams, TenantQuota};

/// Selftest campaign knobs.
#[derive(Debug, Clone)]
pub struct SelftestConfig {
    /// Client submissions to drive (default 1000).
    pub sessions: usize,
    /// Distinct tenants to spread them over.
    pub tenants: usize,
    /// Pool worker threads.
    pub workers: usize,
    /// Campaign seed (chaos decisions and job parameters).
    pub seed: u64,
    /// Whether to inject faults.
    pub chaos: bool,
    /// Whether to run the SIGKILL drill (needs `exe`).
    pub kill_drill: bool,
    /// Spool root; campaign and drill use subdirectories.
    pub spool: PathBuf,
    /// `BENCH_thermal.json` to merge the `serve` row into.
    pub bench_out: Option<PathBuf>,
    /// Binary to spawn for the drill child (`xylem` itself).
    pub exe: Option<PathBuf>,
}

impl SelftestConfig {
    /// Defaults for a spool root.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        SelftestConfig {
            sessions: 1000,
            tenants: 8,
            workers: 2,
            seed: 0xCAFE,
            chaos: true,
            kill_drill: false,
            spool: spool.into(),
            bench_out: None,
            exe: None,
        }
    }
}

/// What the campaign observed and verified.
#[derive(Debug, Clone, Default)]
pub struct SelftestReport {
    /// Submission attempts (including retried ones).
    pub submitted: u64,
    /// Distinct sessions admitted.
    pub admitted: u64,
    /// Transient (backpressure) rejections observed.
    pub rejected: u64,
    /// Sessions that completed.
    pub completed: u64,
    /// Sessions quarantined by the ladder.
    pub quarantined: u64,
    /// Panics caught and contained.
    pub panics_caught: u64,
    /// Economy-stepping degradations.
    pub degradations: u64,
    /// Checkpoint-and-suspend events.
    pub suspends: u64,
    /// Slow-client lines shed.
    pub sheds: u64,
    /// Completed sessions re-verified bit-identically.
    pub verified: u64,
    /// Submit-to-first-frame p50, ms.
    pub p50_first_frame_ms: f64,
    /// Submit-to-first-frame p99, ms.
    pub p99_first_frame_ms: f64,
    /// Whole-session p50, ms.
    pub p50_session_ms: f64,
    /// Whole-session p99, ms.
    pub p99_session_ms: f64,
    /// Whether the SIGKILL drill ran and passed.
    pub kill_drill_passed: bool,
}

/// The demo scenario family: same topology, varying grid and power so
/// a few distinct sources exercise model sharing.
pub fn demo_scenario(grid: usize, power_w: f64) -> String {
    format!(
        "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid {grid} , {grid} ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body {power_w:.1} ;
solver :
    steady ;
output :
    probe hot max in body ;
"
    )
}

/// One deterministic simulated client job.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientJob {
    /// Tenant name.
    pub tenant: String,
    /// Scenario source.
    pub scenario: String,
    /// Submission parameters.
    pub params: SubmitParams,
}

/// The deterministic job list for a campaign seed. Shared by the live
/// run, the drill child, and the verification rerun — determinism of
/// the fleet is what makes "bit-identical" checkable at all.
pub fn client_fleet(seed: u64, sessions: usize, tenants: usize) -> Vec<ClientJob> {
    (0..sessions)
        .map(|i| {
            let r = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37));
            let grid = 4 + (r % 2) as usize * 2; // 4 or 6
            let power = 3.0 + ((r >> 8) % 5) as f64; // 3..7 W
            let steps = 4 + ((r >> 16) % 9) as u32; // 4..12
            ClientJob {
                tenant: format!("tenant-{}", i % tenants.max(1)),
                scenario: demo_scenario(grid, power),
                params: SubmitParams {
                    steps,
                    dt_s: 1e-3,
                    frame_every: 2,
                    power_scale: 1.0,
                    trip_c: None,
                    deadline_ms: None,
                },
            }
        })
        .collect()
}

/// Campaign server configuration: sized so a big fleet genuinely
/// overloads it (forcing backpressure) without starving completion.
fn campaign_config(spool: &Path, workers: usize, chaos: Option<ChaosConfig>) -> ServerConfig {
    let mut cfg = ServerConfig::new(spool);
    cfg.workers = workers;
    cfg.round_slots = 8;
    cfg.queue_cap = 48;
    cfg.client_buffer_cap = 8;
    cfg.max_attempts = 6;
    cfg.suspend_ticks = 2;
    cfg.quota = TenantQuota {
        max_active: 12,
        max_active_steps: 1 << 16,
    };
    cfg.chaos = chaos;
    // The campaign is a load test, not a crash drill: skip fsync so a
    // thousand sessions do not serialize on the disk. The crash drill
    // and `tests/crash.rs` run with sync on.
    cfg.sync = false;
    cfg
}

/// Runs the load/chaos campaign and (optionally) the SIGKILL drill.
///
/// # Errors
///
/// [`ServeError`] on infrastructure faults, and
/// [`ServeError::Protocol`] when a verified contract does not hold
/// (the harness treats a broken contract as a hard failure).
pub fn run_selftest(cfg: &SelftestConfig) -> Result<SelftestReport, ServeError> {
    crate::silence_expected_panics();
    let campaign_dir = cfg.spool.join("campaign");
    let _ = std::fs::remove_dir_all(&campaign_dir);

    let chaos = cfg.chaos.then_some(ChaosConfig {
        seed: cfg.seed,
        panic_per_mille: 25,
        error_per_mille: 25,
        deadline_per_mille: 15,
    });

    let c0 = Snapshot::take();
    let (mut server, _) = Server::open(campaign_config(&campaign_dir, cfg.workers, chaos))?;
    let fleet = client_fleet(cfg.seed, cfg.sessions, cfg.tenants);

    let mut report = SelftestReport::default();
    let mut admitted: BTreeMap<u64, usize> = BTreeMap::new(); // id -> fleet index
    let mut pending: std::collections::VecDeque<usize> = (0..fleet.len()).collect();
    let mut drained_lines = 0u64;

    // Client loop: try a burst of submissions, requeue the rejected
    // (the retry-after protocol), tick the server, occasionally drain
    // a few sessions (most clients stay slow, pressuring the buffers).
    let mut spin = 0u64;
    while !pending.is_empty() || server.status().active > 0 {
        for _ in 0..16 {
            let Some(idx) = pending.pop_front() else {
                break;
            };
            let job = &fleet[idx];
            report.submitted += 1;
            match server.submit(&job.tenant, &job.scenario, &job.params)? {
                Submission::Admitted(id) => {
                    admitted.insert(id, idx);
                }
                Submission::Rejected(r) if r.is_transient() => {
                    report.rejected += 1;
                    pending.push_back(idx);
                }
                Submission::Rejected(r) => {
                    return Err(ServeError::Protocol(format!(
                        "fleet job {idx} permanently rejected: {r}"
                    )));
                }
            }
        }
        server.tick()?;
        // A minority of clients drain; everyone else lets the
        // slow-client shedding path do its job.
        if spin.is_multiple_of(7) {
            for id in server.done_ids().into_iter().take(4) {
                drained_lines += server.drain_output(id).len() as u64;
            }
        }
        spin += 1;
        if spin > 200_000 {
            return Err(ServeError::Protocol(
                "campaign failed to settle (liveness)".to_string(),
            ));
        }
    }
    let status = server.status();
    let done_ids = server.done_ids();
    let quarantined_ids = server.quarantined_ids();
    server.shutdown();

    let c1 = Snapshot::take();
    report.admitted = admitted.len() as u64;
    report.completed = done_ids.len() as u64;
    report.quarantined = quarantined_ids.len() as u64;
    report.panics_caught = c1.panics - c0.panics;
    report.degradations = c1.degradations - c0.degradations;
    report.suspends = c1.suspends - c0.suspends;
    report.sheds = c1.sheds - c0.sheds;
    let _ = drained_lines;

    // Contract: every admitted session reached a durable terminal
    // state, and nothing is left active.
    if status.active != 0 {
        return Err(ServeError::Protocol(format!(
            "{} sessions still active after settle",
            status.active
        )));
    }
    if report.completed + report.quarantined != report.admitted {
        return Err(ServeError::Protocol(format!(
            "admitted {} != completed {} + quarantined {}",
            report.admitted, report.completed, report.quarantined
        )));
    }
    // Contract: the campaign genuinely overloaded the server.
    if cfg.sessions >= 200 && report.rejected == 0 {
        return Err(ServeError::Protocol(
            "campaign never saw backpressure; queue_cap not exercised".to_string(),
        ));
    }
    // Contract: chaos actually bit, and was contained.
    if cfg.chaos && report.panics_caught == 0 {
        return Err(ServeError::Protocol(
            "chaos enabled but no panics were injected/caught".to_string(),
        ));
    }
    if !cfg.chaos && report.quarantined != 0 {
        return Err(ServeError::Protocol(
            "quarantines without chaos: the ladder fired spuriously".to_string(),
        ));
    }

    // Bit-identity: re-run a sample of completed sessions in a fresh,
    // chaos-free, single-threaded server and compare final digests.
    report.verified = verify_sample(&campaign_dir, cfg, &fleet, &admitted, &done_ids)?;

    // Latency percentiles (process-cumulative, which is fine: the
    // campaign dominates this process's serve histograms).
    let ff = summarize(Hist::ServeFirstFrameMs);
    let ss = summarize(Hist::ServeSessionMs);
    report.p50_first_frame_ms = ff.p50_ms;
    report.p99_first_frame_ms = ff.p99_ms;
    report.p50_session_ms = ss.p50_ms;
    report.p99_session_ms = ss.p99_ms;

    if cfg.kill_drill {
        run_kill_drill(cfg)?;
        report.kill_drill_passed = true;
    }

    if let Some(bench) = &cfg.bench_out {
        merge_bench(bench, &report, cfg)?;
    }
    Ok(report)
}

/// Re-runs up to 8 completed sessions chaos-free and compares the
/// durable `done` digests. Returns how many were verified.
fn verify_sample(
    campaign_dir: &Path,
    cfg: &SelftestConfig,
    fleet: &[ClientJob],
    admitted: &BTreeMap<u64, usize>,
    done_ids: &[u64],
) -> Result<u64, ServeError> {
    use crate::spool::Spool;
    let (_, scan) = Spool::open(campaign_dir, false)?;
    let verify_dir = cfg.spool.join("verify");
    let _ = std::fs::remove_dir_all(&verify_dir);
    let mut vcfg = campaign_config(&verify_dir, 0, None);
    vcfg.queue_cap = 16;
    let (mut vserver, _) = Server::open(vcfg)?;
    let mut verified = 0u64;
    for &id in done_ids.iter().take(8) {
        let Some(&idx) = admitted.get(&id) else {
            continue;
        };
        let job = &fleet[idx];
        let vid = match vserver.submit(&job.tenant, &job.scenario, &job.params)? {
            Submission::Admitted(v) => v,
            Submission::Rejected(r) => {
                return Err(ServeError::Protocol(format!("verify submit rejected: {r}")))
            }
        };
        vserver.run_until_settled(10_000)?;
        let (_, vscan) = Spool::open(&verify_dir, false)?;
        let (reference, live) = match (vscan.done.get(&vid), scan.done.get(&id)) {
            (Some(r), Some(l)) => (r.clone(), l.clone()),
            _ => {
                return Err(ServeError::Protocol(format!(
                    "verify run for session {id} has no done record"
                )))
            }
        };
        if reference.final_digest != live.final_digest || reference.step != live.step {
            return Err(ServeError::Protocol(format!(
                "session {id} diverged from chaos-free reference: \
                 digest {:#x} vs {:#x}, step {} vs {}",
                live.final_digest, reference.final_digest, live.step, reference.step
            )));
        }
        verified += 1;
    }
    vserver.shutdown();
    let _ = std::fs::remove_dir_all(&verify_dir);
    Ok(verified)
}

/// The deterministic fleet the SIGKILL drill child runs.
pub fn drill_fleet(seed: u64) -> Vec<ClientJob> {
    let mut fleet = client_fleet(seed ^ 0xD12111, 12, 3);
    for job in &mut fleet {
        // Long enough that a mid-run kill lands mid-session.
        job.params.steps = 40;
    }
    fleet
}

/// Runs the drill child body: submit the drill fleet, tick to
/// completion with a pacing sleep so the parent can land its SIGKILL
/// mid-run. Invoked by `xylem serve --drill-child`.
///
/// # Errors
///
/// [`ServeError`] on spool faults.
pub fn run_drill_child(spool: &Path, seed: u64, pace_ms: u64) -> Result<(), ServeError> {
    let mut cfg = ServerConfig::new(spool);
    cfg.workers = 2;
    cfg.round_slots = 4;
    cfg.sync = true;
    let (mut server, _) = Server::open(cfg)?;
    for job in drill_fleet(seed) {
        match server.submit(&job.tenant, &job.scenario, &job.params)? {
            Submission::Admitted(_) => {}
            Submission::Rejected(r) => {
                return Err(ServeError::Protocol(format!("drill submit rejected: {r}")))
            }
        }
    }
    while server.status().active > 0 {
        server.tick()?;
        if pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(pace_ms));
        }
    }
    server.shutdown();
    Ok(())
}

/// Frame key set of a spool: `(id, idx) -> (digest, chain)`.
pub type FrameSet = BTreeMap<(u64, u32), (u64, u64)>;

/// Reads a spool's frame journal into a keyed set, failing on any
/// duplicate `(id, idx)` — the crash drill's zero-duplicates check.
///
/// # Errors
///
/// [`ServeError::Io`] on read failure, [`ServeError::Protocol`] on a
/// duplicate frame.
pub fn frame_set(dir: &Path) -> Result<FrameSet, ServeError> {
    let path = dir.join("frames.jsonl");
    let mut out = FrameSet::new();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(ServeError::Io(e)),
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // Tolerate one torn tail line (the kill can land mid-append).
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        let Some(m) = v.as_object() else { continue };
        let num = |k: &str| -> Option<u64> {
            match m.get(k) {
                Some(Value::Number(n)) => n.try_as::<u64>(),
                _ => None,
            }
        };
        if let (Some(id), Some(idx), Some(digest), Some(chain)) =
            (num("id"), num("idx"), num("digest"), num("chain"))
        {
            let key = (id, u32::try_from(idx).unwrap_or(u32::MAX));
            if out.insert(key, (digest, chain)).is_some() {
                return Err(ServeError::Protocol(format!(
                    "duplicate frame ({id}, {idx}) in {}",
                    path.display()
                )));
            }
        }
    }
    Ok(out)
}

/// The SIGKILL drill: spawn a child server over a sync spool, kill -9
/// it mid-run, resume in-process, and require (a) zero duplicate
/// frames, (b) the union journal bit-identical to an uninterrupted
/// reference run.
fn run_kill_drill(cfg: &SelftestConfig) -> Result<(), ServeError> {
    let Some(exe) = &cfg.exe else {
        return Err(ServeError::Protocol(
            "kill drill requested but no exe configured".to_string(),
        ));
    };
    let drill_dir = cfg.spool.join("drill");
    let _ = std::fs::remove_dir_all(&drill_dir);
    std::fs::create_dir_all(&drill_dir)?;

    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "--drill-child",
            &format!("--spool={}", drill_dir.display()),
            &format!("--seed={}", cfg.seed),
            "--pace-ms=3",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()?;

    // Wait until real progress is durable, then SIGKILL mid-run.
    let frames_path = drill_dir.join("frames.jsonl");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let lines = std::fs::read_to_string(&frames_path)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 20 {
            break;
        }
        if child.try_wait()?.is_some() {
            return Err(ServeError::Protocol(
                "drill child finished before the kill landed; raise steps/pace".to_string(),
            ));
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            return Err(ServeError::Protocol(
                "drill child made no progress within 120s".to_string(),
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill()?; // SIGKILL: no cleanup handlers run, by design.
    let _ = child.wait();

    // Resume in-process over the killed spool and finish everything.
    let mut rcfg = ServerConfig::new(&drill_dir);
    rcfg.workers = 2;
    rcfg.round_slots = 4;
    rcfg.sync = true;
    let (mut resumed, resume_report) = Server::open(rcfg)?;
    if resume_report.resumed == 0 {
        return Err(ServeError::Protocol(
            "kill landed but no session was mid-flight; raise steps/pace".to_string(),
        ));
    }
    resumed.run_until_settled(200_000)?;
    let quarantined = resumed.quarantined_ids();
    resumed.shutdown();
    if !quarantined.is_empty() {
        return Err(ServeError::Protocol(format!(
            "drill quarantined sessions {quarantined:?} without chaos"
        )));
    }

    // Reference: the same fleet, uninterrupted.
    let ref_dir = cfg.spool.join("drill-ref");
    let _ = std::fs::remove_dir_all(&ref_dir);
    run_drill_child(&ref_dir, cfg.seed, 0)?;

    let killed = frame_set(&drill_dir)?; // errors on any duplicate
    let reference = frame_set(&ref_dir)?;
    if killed != reference {
        return Err(ServeError::Protocol(format!(
            "killed+resumed journal diverges from uninterrupted reference: \
             {} vs {} frames",
            killed.len(),
            reference.len()
        )));
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
    Ok(())
}

/// Serve-counter snapshot for campaign deltas.
struct Snapshot {
    panics: u64,
    degradations: u64,
    suspends: u64,
    sheds: u64,
}

impl Snapshot {
    fn take() -> Self {
        Snapshot {
            panics: counter(Counter::ServePanicsCaught),
            degradations: counter(Counter::ServeDeadlineDegradations),
            suspends: counter(Counter::ServeSuspends),
            sheds: counter(Counter::ServeSlowClientSheds),
        }
    }
}

/// Merges the `serve` row into `BENCH_thermal.json`, preserving every
/// other key (the bench smoke owns the rest of the file).
fn merge_bench(
    path: &Path,
    report: &SelftestReport,
    cfg: &SelftestConfig,
) -> Result<(), ServeError> {
    let mut root: Value = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| ServeError::Protocol(format!("{}: {e}", path.display())))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Value::Object(Map::new()),
        Err(e) => return Err(ServeError::Io(e)),
    };
    let Value::Object(m) = &mut root else {
        return Err(ServeError::Protocol(format!(
            "{} is not a JSON object",
            path.display()
        )));
    };
    let mut serve = Map::new();
    let put_u = |k: &str, v: u64, m: &mut Map| {
        m.insert(k.to_string(), Value::Number(Number::U64(v)));
    };
    put_u("sessions", cfg.sessions as u64, &mut serve);
    put_u("admitted", report.admitted, &mut serve);
    put_u("completed", report.completed, &mut serve);
    put_u("quarantined", report.quarantined, &mut serve);
    put_u("rejected_transient", report.rejected, &mut serve);
    put_u("panics_caught", report.panics_caught, &mut serve);
    put_u("degradations", report.degradations, &mut serve);
    put_u("suspends", report.suspends, &mut serve);
    put_u("slow_client_sheds", report.sheds, &mut serve);
    put_u("verified_bit_identical", report.verified, &mut serve);
    serve.insert(
        "p50_submit_to_first_frame_ms".to_string(),
        Value::Number(Number::F64(report.p50_first_frame_ms)),
    );
    serve.insert(
        "p99_submit_to_first_frame_ms".to_string(),
        Value::Number(Number::F64(report.p99_first_frame_ms)),
    );
    serve.insert(
        "p50_session_ms".to_string(),
        Value::Number(Number::F64(report.p50_session_ms)),
    );
    serve.insert(
        "p99_session_ms".to_string(),
        Value::Number(Number::F64(report.p99_session_ms)),
    );
    serve.insert(
        "kill_drill_passed".to_string(),
        Value::Bool(report.kill_drill_passed),
    );
    m.insert("serve".to_string(), Value::Object(serve));
    let text =
        serde_json::to_string_pretty(&root).map_err(|e| ServeError::Protocol(e.to_string()))?;
    std::fs::write(path, text + "\n")?;
    Ok(())
}
