//! Error and rejection types for the serve layer.
//!
//! The split matters: a [`Rejection`] is a *normal* protocol outcome
//! (the admission controller saying "not now" or "never"), while a
//! [`ServeError`] is an infrastructure fault (spool I/O, corrupt
//! journal). Overload must never be reported as an error — clients
//! retry rejections, they page on errors.

use std::fmt;

use xylem_thermal::error::ThermalError;

/// Why a submission was not admitted.
///
/// `retry_after_ms: Some(_)` marks the rejection as transient
/// (backpressure): the client should resubmit after the hint. `None`
/// marks it permanent (malformed scenario, oversized job): resubmitting
/// the same payload can never succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Human-readable reason, stable enough to assert on in tests.
    pub reason: String,
    /// Backoff hint in milliseconds; `None` means permanent.
    pub retry_after_ms: Option<u64>,
}

impl Rejection {
    /// A transient, overload-driven rejection with a backoff hint.
    pub fn backpressure(reason: impl Into<String>, retry_after_ms: u64) -> Self {
        Rejection {
            reason: reason.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// A permanent rejection: the submission itself is invalid.
    pub fn permanent(reason: impl Into<String>) -> Self {
        Rejection {
            reason: reason.into(),
            retry_after_ms: None,
        }
    }

    /// Whether the client may usefully resubmit later.
    pub fn is_transient(&self) -> bool {
        self.retry_after_ms.is_some()
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.retry_after_ms {
            Some(ms) => write!(f, "rejected ({}); retry after {ms} ms", self.reason),
            None => write!(f, "rejected permanently ({})", self.reason),
        }
    }
}

/// An infrastructure fault inside the serve layer.
#[derive(Debug)]
pub enum ServeError {
    /// Spool or journal I/O failed.
    Io(std::io::Error),
    /// A durable record failed to parse on recovery.
    Corrupt {
        /// Which file the record came from.
        source: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A checkpoint failed integrity validation.
    Checkpoint(String),
    /// A session's thermal solve failed in a non-recoverable way.
    Thermal(ThermalError),
    /// The server is shutting down and cannot accept work.
    ShuttingDown,
    /// A protocol request was malformed.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "spool I/O: {e}"),
            ServeError::Corrupt { source, detail } => {
                write!(f, "corrupt record in {source}: {detail}")
            }
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::Thermal(e) => write!(f, "thermal: {e}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ThermalError> for ServeError {
    fn from(e: ThermalError) -> Self {
        ServeError::Thermal(e)
    }
}
