//! The server: admission control, fair round-robin scheduling, the
//! degradation ladder, and crash-only state management.
//!
//! # Execution model
//!
//! Time is divided into *ticks*. Each tick the scheduler picks at most
//! `round_slots` runnable sessions — round-robin across tenants, so no
//! tenant's backlog can starve another — dispatches one slice per
//! picked session to the bounded pool, blocks for exactly that batch,
//! and applies the outcomes **sorted by session id**. The barrier plus
//! the sort makes the authoritative state evolution deterministic even
//! though slice completion order on the pool is not.
//!
//! # Crash-only durability
//!
//! Order per applied slice: frame append + fsync → checkpoint save.
//! A SIGKILL between the two leaves a frame the checkpoint does not
//! know about; on resume the slice is recomputed bit-identically
//! (slices are split-invariant) and the regenerated frame is
//! *suppressed* by its durable index instead of re-journaled — zero
//! duplicates, zero gaps, no recovery-specific code path.
//!
//! # Degradation ladder
//!
//! A session that misses its slice deadline degrades instead of
//! failing: first *economy stepping* (frame stride doubles, halving
//! per-frame overhead), then *checkpoint-and-suspend* (its shared
//! model is released and it sleeps for `suspend_ticks`), and only on a
//! third miss *quarantine* — durable, inspectable, never silent. A
//! panicking or erroring slice never touches authoritative state (the
//! slice ran on a snapshot) and is retried up to `max_attempts`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use xylem_obs::metrics::{incr, record_ns, Counter, Hist};

use crate::chaos::ChaosConfig;
use crate::error::{Rejection, ServeError};
use crate::pool::BoundedPool;
use crate::session::{
    run_slice, ModelRegistry, SessionSpec, SessionState, SharedModel, SliceOutcome, SliceRequest,
};
use crate::spool::{Spool, SpoolScan};

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum concurrently active (admitted, unfinished) sessions.
    pub max_active: usize,
    /// Maximum total remaining steps across a tenant's active sessions.
    pub max_active_steps: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_active: 64,
            max_active_steps: 1 << 20,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Spool directory (created if missing).
    pub spool_dir: PathBuf,
    /// Worker threads; `0` runs slices inline (deterministic mode).
    pub workers: usize,
    /// Max slices dispatched per tick.
    pub round_slots: usize,
    /// Global cap on active sessions (backpressure beyond it).
    pub queue_cap: usize,
    /// Per-session client buffer capacity, in lines.
    pub client_buffer_cap: usize,
    /// Slice attempts (panic/error) before quarantine.
    pub max_attempts: u32,
    /// Ticks a deadline-suspended session sleeps.
    pub suspend_ticks: u64,
    /// Per-tenant quota.
    pub quota: TenantQuota,
    /// Fault injection (None outside the chaos harness).
    pub chaos: Option<ChaosConfig>,
    /// Whether journal appends fsync (crash drills require `true`).
    pub sync: bool,
}

impl ServerConfig {
    /// Defaults for a spool directory.
    pub fn new(spool_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            spool_dir: spool_dir.into(),
            workers: 2,
            round_slots: 8,
            queue_cap: 256,
            client_buffer_cap: 64,
            max_attempts: 3,
            suspend_ticks: 4,
            quota: TenantQuota::default(),
            chaos: None,
            sync: true,
        }
    }
}

/// Admission verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Submission {
    /// Admitted with this session id.
    Admitted(u64),
    /// Not admitted; see the rejection for whether to retry.
    Rejected(Rejection),
}

/// Client-settable parameters of a submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitParams {
    /// Total backward-Euler steps.
    pub steps: u32,
    /// Step size, seconds.
    pub dt_s: f64,
    /// Steps per frame.
    pub frame_every: u32,
    /// Power multiplier.
    pub power_scale: f64,
    /// Serve-side throttle trip, deg C.
    pub trip_c: Option<f64>,
    /// Per-slice wall-clock budget, ms.
    pub deadline_ms: Option<u64>,
}

impl Default for SubmitParams {
    fn default() -> Self {
        SubmitParams {
            steps: 8,
            dt_s: 1e-3,
            frame_every: 2,
            power_scale: 1.0,
            trip_c: None,
            deadline_ms: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Runnable,
    InFlight,
    Suspended { until_tick: u64 },
}

struct Session {
    spec: SessionSpec,
    state: SessionState,
    phase: Phase,
    shared: Option<Arc<SharedModel>>,
    /// Frames already durable in the journal (suppress re-emission
    /// below this index after a crash-resume).
    durable_frames: u32,
    /// Wall-clock submission time; `None` for resumed sessions, whose
    /// submit-to-frame latency would be meaningless.
    submitted_at: Option<Instant>,
    submit_tick: u64,
    first_frame_tick: Option<u64>,
}

/// Per-session outgoing line buffer with slow-client shedding: when the
/// client stops draining, the *oldest* lines are dropped (they remain
/// durable in the journal — shedding loses convenience, not data).
#[derive(Default)]
struct ClientBuffer {
    lines: VecDeque<String>,
    shed: bool,
}

/// Counts of sessions by terminal state, plus live totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatus {
    /// Current scheduler tick.
    pub tick: u64,
    /// Admitted, unfinished sessions.
    pub active: usize,
    /// Of those, currently runnable.
    pub runnable: usize,
    /// Sessions completed (ever, including before a crash).
    pub done: usize,
    /// Sessions quarantined (ever).
    pub quarantined: usize,
}

/// Per-session progress for tests and the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Session id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Steps completed.
    pub step: u32,
    /// Total steps requested.
    pub steps: u32,
    /// Frames emitted.
    pub frames: u32,
    /// Frame chain digest.
    pub chain: u64,
    /// Tick the session was admitted on.
    pub submit_tick: u64,
    /// Tick of the first frame, if any.
    pub first_frame_tick: Option<u64>,
    /// Current throttle level.
    pub level: u8,
    /// Deadline misses so far.
    pub deadline_misses: u32,
}

/// What `Server::open` recovered from the spool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeReport {
    /// In-flight sessions restored and requeued.
    pub resumed: usize,
    /// Sessions already durably done.
    pub already_done: usize,
    /// Sessions already durably quarantined.
    pub already_quarantined: usize,
}

type OutcomeMsg = (u64, SliceOutcome, u64);

/// The serve scheduler. See the module docs for the execution model.
pub struct Server {
    cfg: ServerConfig,
    spool: Spool,
    registry: ModelRegistry,
    sessions: BTreeMap<u64, Session>,
    /// Tick-clock latency log of completed sessions (id →
    /// (submit_tick, first_frame_tick, done_tick)); tick-based so
    /// fairness bounds are deterministic on any machine.
    completion_ticks: BTreeMap<u64, (u64, Option<u64>, u64)>,
    done: BTreeSet<u64>,
    quarantined: BTreeSet<u64>,
    outputs: BTreeMap<u64, ClientBuffer>,
    pool: BoundedPool,
    tx: Sender<OutcomeMsg>,
    rx: Receiver<OutcomeMsg>,
    tick: u64,
    ring_offset: usize,
    next_id: u64,
}

impl Server {
    /// Opens the server over a spool directory, resuming every
    /// in-flight session recorded there.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for spool I/O or corruption.
    pub fn open(cfg: ServerConfig) -> Result<(Server, ResumeReport), ServeError> {
        let (spool, scan) = Spool::open(&cfg.spool_dir, cfg.sync)?;
        let mut registry = ModelRegistry::new();
        let SpoolScan {
            submits,
            done,
            quarantined,
            durable_frames,
            sources,
            max_id,
        } = scan;
        for (key, source) in sources {
            registry.restore(key, source);
        }

        let pool = BoundedPool::new(cfg.workers, cfg.round_slots.max(1));
        let (tx, rx) = channel();
        let mut server = Server {
            spool,
            registry,
            sessions: BTreeMap::new(),
            completion_ticks: BTreeMap::new(),
            done: done.keys().copied().collect(),
            quarantined,
            outputs: BTreeMap::new(),
            pool,
            tx,
            rx,
            tick: 0,
            ring_offset: 0,
            next_id: max_id + 1,
            cfg,
        };

        let mut report = ResumeReport {
            already_done: server.done.len(),
            already_quarantined: server.quarantined.len(),
            ..ResumeReport::default()
        };
        for spec in submits {
            let id = spec.id;
            if server.done.contains(&id) || server.quarantined.contains(&id) {
                continue;
            }
            let restored = server.spool.load_state(id)?;
            let durable = durable_frames.get(&id).copied().unwrap_or(0);
            let mid_flight = restored.is_some() || durable > 0;
            let state = restored.unwrap_or_else(|| SessionState::fresh(&spec));
            server.sessions.insert(
                id,
                Session {
                    spec,
                    state,
                    phase: Phase::Runnable,
                    shared: None,
                    durable_frames: durable,
                    submitted_at: None,
                    submit_tick: 0,
                    first_frame_tick: None,
                },
            );
            if mid_flight {
                incr(Counter::ServeSessionsResumed);
                report.resumed += 1;
            }
        }
        Ok((server, report))
    }

    /// The spool directory this server persists into.
    pub fn spool_dir(&self) -> &std::path::Path {
        self.spool.dir()
    }

    fn active_of(&self, tenant: &str) -> (usize, u64) {
        let mut count = 0usize;
        let mut steps = 0u64;
        for s in self.sessions.values() {
            if s.spec.tenant == tenant {
                count += 1;
                steps += u64::from(s.spec.steps.saturating_sub(s.state.step));
            }
        }
        (count, steps)
    }

    /// Submits a scenario for simulation.
    ///
    /// Admission is checked before any durable write: global capacity,
    /// per-tenant quota, parameter sanity, and a full compile of the
    /// scenario source. A rejection is a normal outcome, not an error;
    /// transient rejections carry a `retry_after_ms` hint proportional
    /// to the current backlog.
    ///
    /// # Errors
    ///
    /// [`ServeError`] only for spool faults; overload never errors.
    pub fn submit(
        &mut self,
        tenant: &str,
        source: &str,
        params: &SubmitParams,
    ) -> Result<Submission, ServeError> {
        incr(Counter::ServeSubmitted);
        let reject = |r: Rejection| {
            incr(Counter::ServeRejected);
            Ok(Submission::Rejected(r))
        };

        if !(params.dt_s.is_finite() && params.dt_s > 0.0) {
            return reject(Rejection::permanent(format!("bad dt_s {}", params.dt_s)));
        }
        if params.steps == 0 || params.frame_every == 0 {
            return reject(Rejection::permanent("steps and frame_every must be >= 1"));
        }
        if !(params.power_scale.is_finite() && params.power_scale >= 0.0) {
            return reject(Rejection::permanent(format!(
                "bad power_scale {}",
                params.power_scale
            )));
        }
        if u64::from(params.steps) > self.cfg.quota.max_active_steps {
            return reject(Rejection::permanent(format!(
                "job of {} steps exceeds the per-tenant step quota {}",
                params.steps, self.cfg.quota.max_active_steps
            )));
        }

        let active = self.sessions.len();
        if active >= self.cfg.queue_cap {
            return reject(Rejection::backpressure(
                format!("server at capacity ({active} active sessions)"),
                5 * active as u64,
            ));
        }
        let (tenant_active, tenant_steps) = self.active_of(tenant);
        if tenant_active >= self.cfg.quota.max_active {
            return reject(Rejection::backpressure(
                format!("tenant {tenant} at session quota ({tenant_active})"),
                10 * tenant_active as u64,
            ));
        }
        if tenant_steps + u64::from(params.steps) > self.cfg.quota.max_active_steps {
            return reject(Rejection::backpressure(
                format!("tenant {tenant} at step quota ({tenant_steps} active steps)"),
                (tenant_steps / 16).max(1),
            ));
        }

        let source_key = match self.registry.register(source) {
            Ok(k) => k,
            Err(r) => return reject(r),
        };

        let id = self.next_id;
        self.next_id += 1;
        let spec = SessionSpec {
            id,
            tenant: tenant.to_string(),
            source_key,
            steps: params.steps,
            dt_s: params.dt_s,
            frame_every: params.frame_every,
            power_scale: params.power_scale,
            trip_c: params.trip_c,
            deadline_ms: params.deadline_ms,
        };
        // Durability order: source, then submit record, then memory.
        // A crash right after the fsync'd submit record resumes the
        // session; a crash before it never admitted anything.
        if let Some(src) = self.registry.source(source_key) {
            let src = src.to_string();
            self.spool.record_source(source_key, &src)?;
        }
        self.spool.record_submit(&spec)?;
        let state = SessionState::fresh(&spec);
        self.sessions.insert(
            id,
            Session {
                spec,
                state,
                phase: Phase::Runnable,
                shared: None,
                durable_frames: 0,
                submitted_at: Some(Instant::now()),
                submit_tick: self.tick,
                first_frame_tick: None,
            },
        );
        incr(Counter::ServeAdmitted);
        Ok(Submission::Admitted(id))
    }

    /// Round-robin selection across tenants: rotate the tenant ring
    /// each tick, take one session per tenant per pass.
    fn select(&self) -> Vec<u64> {
        let mut by_tenant: BTreeMap<&str, VecDeque<u64>> = BTreeMap::new();
        for (id, s) in &self.sessions {
            if s.phase == Phase::Runnable {
                by_tenant.entry(&s.spec.tenant).or_default().push_back(*id);
            }
        }
        if by_tenant.is_empty() {
            return Vec::new();
        }
        let mut queues: Vec<VecDeque<u64>> = by_tenant.into_values().collect();
        let n = queues.len();
        queues.rotate_left(self.ring_offset % n);
        let mut picked = Vec::new();
        let mut any = true;
        while picked.len() < self.cfg.round_slots && any {
            any = false;
            for q in &mut queues {
                if picked.len() >= self.cfg.round_slots {
                    break;
                }
                if let Some(id) = q.pop_front() {
                    picked.push(id);
                    any = true;
                }
            }
        }
        picked
    }

    /// Runs one scheduler tick. Returns the number of slices applied.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for spool faults while persisting outcomes.
    pub fn tick(&mut self) -> Result<usize, ServeError> {
        // Wake suspended sessions whose sleep expired.
        let now = self.tick;
        for s in self.sessions.values_mut() {
            if let Phase::Suspended { until_tick } = s.phase {
                if until_tick <= now {
                    s.phase = Phase::Runnable;
                }
            }
        }

        let picked = self.select();
        let mut dispatched = 0usize;
        for id in picked {
            match self.dispatch(id) {
                Ok(true) => dispatched += 1,
                Ok(false) => {}
                Err(e) => return Err(e),
            }
        }

        let mut outcomes: Vec<OutcomeMsg> = Vec::with_capacity(dispatched);
        for _ in 0..dispatched {
            match self.rx.recv() {
                Ok(msg) => outcomes.push(msg),
                // The senders live in jobs we just submitted; a closed
                // channel means the pool died, which is unreachable —
                // but degrade to "apply what arrived" rather than hang.
                Err(_) => {
                    xylem_obs::metrics::incr(Counter::ServeOutcomesLost);
                    break;
                }
            }
        }
        outcomes.sort_by_key(|(id, _, _)| *id);
        let applied = outcomes.len();
        for (id, outcome, elapsed_ns) in outcomes {
            record_ns(Hist::ServeSliceMs, elapsed_ns);
            self.apply(id, outcome)?;
        }

        self.tick += 1;
        self.ring_offset = self.ring_offset.wrapping_add(1);
        Ok(applied)
    }

    /// Ticks until no session is active or `max_ticks` elapse.
    ///
    /// # Errors
    ///
    /// As [`Server::tick`]; additionally [`ServeError::Protocol`] if
    /// the budget runs out with sessions still active (a liveness bug).
    pub fn run_until_settled(&mut self, max_ticks: u64) -> Result<(), ServeError> {
        for _ in 0..max_ticks {
            if self.sessions.is_empty() {
                return Ok(());
            }
            self.tick()?;
        }
        if self.sessions.is_empty() {
            return Ok(());
        }
        Err(ServeError::Protocol(format!(
            "{} sessions still active after {max_ticks} ticks",
            self.sessions.len()
        )))
    }

    /// Dispatches one slice for `id`. Returns whether a job is now in
    /// flight (quarantine at materialization returns `Ok(false)`).
    fn dispatch(&mut self, id: u64) -> Result<bool, ServeError> {
        let Some(s) = self.sessions.get_mut(&id) else {
            return Ok(false);
        };
        if s.shared.is_none() {
            match self.registry.acquire(s.spec.source_key) {
                Ok(m) => s.shared = Some(m),
                Err(e) => {
                    // A source that stopped discretizing is a permanent
                    // fault of this session, not of the server.
                    xylem_obs::metrics::incr(Counter::ServeMaterializationFailures);
                    let reason = format!("model materialization failed: {e}");
                    self.quarantine(id, &reason)?;
                    return Ok(false);
                }
            }
        }
        let Some(s) = self.sessions.get_mut(&id) else {
            return Ok(false);
        };
        let Some(shared) = s.shared.clone() else {
            return Ok(false);
        };
        let req = SliceRequest {
            shared,
            spec: s.spec.clone(),
            state: s.state.clone(),
            chaos: self.cfg.chaos,
        };
        s.phase = Phase::InFlight;
        let fallback = SliceRequest {
            shared: Arc::clone(&req.shared),
            spec: req.spec.clone(),
            state: req.state.clone(),
            chaos: req.chaos,
        };
        let tx = self.tx.clone();
        let job = move || run_and_report(id, &req, &tx);
        // The pool queue is sized to round_slots, so within one tick's
        // batch submission cannot saturate; if it somehow does, run the
        // slice inline rather than dropping the dispatch.
        if self.pool.try_submit(job).is_err() {
            run_and_report(id, &fallback, &self.tx);
        }
        Ok(true)
    }

    fn push_line(&mut self, id: u64, line: String) {
        let buf = self.outputs.entry(id).or_default();
        while buf.lines.len() >= self.cfg.client_buffer_cap.max(1) {
            buf.lines.pop_front();
            buf.shed = true;
            incr(Counter::ServeSlowClientSheds);
        }
        buf.lines.push_back(line);
    }

    fn quarantine(&mut self, id: u64, reason: &str) -> Result<(), ServeError> {
        self.spool.record_quarantine(id, reason)?;
        self.sessions.remove(&id);
        self.quarantined.insert(id);
        incr(Counter::ServeSessionsQuarantined);
        self.push_line(id, event_json(id, "quarantined", reason));
        Ok(())
    }

    fn apply(&mut self, id: u64, outcome: SliceOutcome) -> Result<(), ServeError> {
        if !self.sessions.contains_key(&id) {
            return Ok(());
        }
        if let Some(s) = self.sessions.get_mut(&id) {
            s.phase = Phase::Runnable;
        }
        match outcome {
            SliceOutcome::Advanced { state, frame } => {
                let durable = self.sessions.get(&id).map_or(0, |s| s.durable_frames);
                let line = if frame.idx < durable {
                    incr(Counter::ServeFramesSuppressed);
                    None
                } else {
                    let line = self.spool.record_frame(&frame)?;
                    incr(Counter::ServeFramesEmitted);
                    Some(line)
                };
                let tick = self.tick;
                let (snapshot, complete, submitted_at, ticks) = {
                    let Some(s) = self.sessions.get_mut(&id) else {
                        return Ok(());
                    };
                    if s.first_frame_tick.is_none() {
                        s.first_frame_tick = Some(tick);
                        if let Some(at) = s.submitted_at {
                            let ns = at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                            record_ns(Hist::ServeFirstFrameMs, ns);
                        }
                    }
                    s.state = state;
                    (
                        s.state.clone(),
                        s.state.is_complete(&s.spec),
                        s.submitted_at,
                        (s.submit_tick, s.first_frame_tick, tick),
                    )
                };
                // Frame (already fsync'd) strictly precedes checkpoint.
                self.spool.save_state(id, &snapshot)?;
                if let Some(line) = line {
                    self.push_line(id, line);
                }
                if complete {
                    let done = Spool::done_record(id, &snapshot);
                    self.spool.record_done(&done)?;
                    self.sessions.remove(&id);
                    self.done.insert(id);
                    self.completion_ticks.insert(id, ticks);
                    incr(Counter::ServeSessionsCompleted);
                    if let Some(at) = submitted_at {
                        let ns = at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        record_ns(Hist::ServeSessionMs, ns);
                    }
                    self.push_line(id, event_json(id, "done", "session complete"));
                }
            }
            SliceOutcome::DeadlineMiss => {
                let suspend_until = self.tick + self.cfg.suspend_ticks;
                let (snapshot, misses) = {
                    let Some(s) = self.sessions.get_mut(&id) else {
                        return Ok(());
                    };
                    s.state.deadline_misses += 1;
                    let misses = s.state.deadline_misses;
                    if misses == 1 {
                        // Rung 1: economy stepping — double the frame
                        // stride so each deadline budget buys more
                        // steps.
                        s.state.frame_stride = s.state.frame_stride.saturating_mul(2);
                    } else if misses == 2 {
                        // Rung 2: checkpoint and suspend; release the
                        // shared model so memory drains under pressure.
                        s.shared = None;
                        s.phase = Phase::Suspended {
                            until_tick: suspend_until,
                        };
                    }
                    (s.state.clone(), misses)
                };
                self.spool.save_state(id, &snapshot)?;
                if misses == 1 {
                    incr(Counter::ServeDeadlineDegradations);
                    self.push_line(id, event_json(id, "degraded", "economy stepping engaged"));
                } else if misses == 2 {
                    incr(Counter::ServeSuspends);
                    self.push_line(id, event_json(id, "suspended", "checkpointed and parked"));
                } else {
                    self.quarantine(id, "deadline budget exhausted")?;
                }
            }
            SliceOutcome::Failed { error } | SliceOutcome::Panicked { message: error } => {
                // The slice ran on a snapshot: authoritative state is
                // untouched (poisoned-state teardown by construction).
                // (Panics were already counted at the catch site in
                // `run_and_report`.)
                let (snapshot, attempts) = {
                    let Some(s) = self.sessions.get_mut(&id) else {
                        return Ok(());
                    };
                    s.state.attempts += 1;
                    (s.state.clone(), s.state.attempts)
                };
                self.spool.save_state(id, &snapshot)?;
                if attempts >= self.cfg.max_attempts {
                    self.quarantine(id, &format!("{attempts} failed attempts; last: {error}"))?;
                } else {
                    self.push_line(id, event_json(id, "retrying", &error));
                }
            }
        }
        Ok(())
    }

    /// Drains the buffered output lines for a session. If lines were
    /// shed since the last drain, the first line announces it (the
    /// shed frames themselves remain durable in the journal).
    pub fn drain_output(&mut self, id: u64) -> Vec<String> {
        match self.outputs.get_mut(&id) {
            Some(buf) => {
                let mut out = Vec::with_capacity(buf.lines.len() + 1);
                if buf.shed {
                    buf.shed = false;
                    out.push(event_json(
                        id,
                        "overflow",
                        "older lines shed; replay from the frames journal",
                    ));
                }
                out.extend(buf.lines.drain(..));
                out
            }
            None => Vec::new(),
        }
    }

    /// Current status counts.
    pub fn status(&self) -> ServerStatus {
        ServerStatus {
            tick: self.tick,
            active: self.sessions.len(),
            runnable: self
                .sessions
                .values()
                .filter(|s| s.phase == Phase::Runnable)
                .count(),
            done: self.done.len(),
            quarantined: self.quarantined.len(),
        }
    }

    /// Progress report for one live session (`None` once terminal).
    pub fn session_report(&self, id: u64) -> Option<SessionReport> {
        self.sessions.get(&id).map(|s| SessionReport {
            id,
            tenant: s.spec.tenant.clone(),
            step: s.state.step,
            steps: s.spec.steps,
            frames: s.state.frames,
            chain: s.state.chain,
            submit_tick: s.submit_tick,
            first_frame_tick: s.first_frame_tick,
            level: s.state.level,
            deadline_misses: s.state.deadline_misses,
        })
    }

    /// Ids of durably completed sessions.
    pub fn done_ids(&self) -> Vec<u64> {
        self.done.iter().copied().collect()
    }

    /// Tick-clock latencies of a session completed in this process:
    /// `(submit_tick, first_frame_tick, done_tick)`. Deterministic
    /// (scheduler ticks, not wall clock), which is what the fairness
    /// regression locks its bound against.
    pub fn completion_ticks(&self, id: u64) -> Option<(u64, Option<u64>, u64)> {
        self.completion_ticks.get(&id).copied()
    }

    /// Ids of durably quarantined sessions.
    pub fn quarantined_ids(&self) -> Vec<u64> {
        self.quarantined.iter().copied().collect()
    }

    /// Stops the pool and returns. All state is already durable — the
    /// graceful path and `kill -9` converge on the same spool contents.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

/// Serializes a lifecycle event as a JSONL line.
fn event_json(id: u64, kind: &str, detail: &str) -> String {
    let mut m = serde::Map::new();
    m.insert(
        "record".to_string(),
        serde::Value::String("event".to_string()),
    );
    m.insert(
        "id".to_string(),
        serde::Value::Number(serde::Number::U64(id)),
    );
    m.insert("kind".to_string(), serde::Value::String(kind.to_string()));
    m.insert(
        "detail".to_string(),
        serde::Value::String(detail.to_string()),
    );
    serde_json::to_string(&serde::Value::Object(m)).unwrap_or_default()
}

/// Runs one slice with the mandatory `catch_unwind` wrapper and sends
/// its outcome (always — the barrier in `tick` counts on it).
fn run_and_report(id: u64, req: &SliceRequest, tx: &Sender<OutcomeMsg>) {
    let started = Instant::now();
    let outcome = match catch_unwind(AssertUnwindSafe(|| run_slice(req))) {
        Ok(o) => o,
        Err(payload) => {
            // The containment point: every session panic in the whole
            // service funnels through this branch and is counted here.
            xylem_obs::metrics::incr(Counter::ServePanicsCaught);
            SliceOutcome::Panicked {
                message: panic_message(payload.as_ref()),
            }
        }
    };
    let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let _ = tx.send((id, outcome, elapsed));
}

/// Renders a panic payload (the sweep engine's downcast idiom).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}
