//! `xylem-serve`: a crash-only, overload-tolerant multi-tenant
//! simulation service over `.stk` scenarios.
//!
//! The server accepts scenario submissions (source + workload
//! parameters + budgets), runs hundreds of concurrent transient
//! sessions over a bounded worker pool, and streams per-session JSONL
//! frames and lifecycle events over a line-delimited stdio/socket
//! protocol ([`protocol`]).
//!
//! Robustness contracts, each locked by a test or the chaos harness:
//!
//! * **Explicit backpressure** — a full queue or exhausted tenant
//!   quota yields a reject-with-retry-after response, never unbounded
//!   buffering ([`error::Rejection`], `tests/backpressure.rs`).
//! * **Fairness** — scheduling is round-robin across tenants per tick;
//!   a tenant submitting 10x-oversized jobs cannot materially degrade
//!   another tenant's tick-measured latency (`tests/load.rs`).
//! * **Graceful degradation** — per-slice wall-clock deadlines drive a
//!   ladder: economy stepping → checkpoint-and-suspend → quarantine.
//!   No panic ever escapes a session ([`scheduler`]).
//! * **Crash-only** — every admitted session is durable before it
//!   computes; `kill -9` at any instant resumes every in-flight
//!   session bit-identically with zero duplicate frames
//!   ([`spool`], `tests/crash.rs`).
//! * **Chaos-tested** — a seeded harness ([`selftest`]) drives
//!   thousands of client submissions while injecting panics, solver
//!   errors, deadline exhaustion, and a mid-run SIGKILL, then checks
//!   completion, isolation, and latency percentiles.

pub mod chaos;
pub mod error;
pub mod pool;
pub mod protocol;
pub mod scheduler;
pub mod selftest;
pub mod session;
pub mod spool;

pub use chaos::ChaosConfig;
pub use error::{Rejection, ServeError};
pub use scheduler::{
    ResumeReport, Server, ServerConfig, ServerStatus, Submission, SubmitParams, TenantQuota,
};
pub use selftest::{run_selftest, SelftestConfig, SelftestReport};

/// Installs (once, process-wide) a panic hook that keeps expected
/// chaos-injected panics from spraying backtraces while still printing
/// every genuine panic. Harness entry points call this before enabling
/// fault injection.
pub fn silence_expected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        std::panic::set_hook(Box::new(|info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(chaos::CHAOS_PANIC_MARKER) {
                eprintln!("{info}");
            }
        }));
    });
}
