//! A bounded worker pool with explicit backpressure.
//!
//! The pool is the service's only source of compute concurrency, and it
//! is deliberately boring: a fixed worker count, a bounded job queue,
//! and a non-blocking [`BoundedPool::try_submit`] that fails fast with
//! [`PoolSaturated`] instead of queueing unboundedly. Overload is
//! surfaced to the admission layer (which turns it into a
//! retry-after rejection), never absorbed as latent memory growth.
//!
//! Workers wrap every job in `catch_unwind` as a backstop; the
//! scheduler wraps session slices in their own `catch_unwind` first, so
//! a panic reaching the pool layer means a bug in the scheduler itself
//! — it is swallowed (crash-only: the journal protects the state), and
//! the worker thread survives to take the next job.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A job the pool runs: boxed, sendable, run-once.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`BoundedPool::try_submit`] when the job queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSaturated {
    /// The queue capacity that was hit.
    pub capacity: usize,
}

struct Inner {
    jobs: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    capacity: usize,
    shutting_down: AtomicBool,
}

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Pool state (a plain job deque) has no invariant a panic can tear.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed-size worker pool over a bounded FIFO job queue.
pub struct BoundedPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl BoundedPool {
    /// Spawns `workers` threads over a queue of at most `capacity` jobs.
    ///
    /// `workers == 0` is allowed and yields an inline pool: submission
    /// runs the job on the caller's thread (used by deterministic
    /// tests and single-threaded deployments).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let inner = Arc::new(Inner {
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            capacity: capacity.max(1),
            shutting_down: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<Result<Vec<_>, _>>()
            // Thread spawn fails only on resource exhaustion at startup,
            // before any session state exists; treat it as fatal.
            .unwrap_or_else(|e| panic!("serve pool failed to spawn workers: {e}"));
        BoundedPool {
            inner,
            workers: handles,
        }
    }

    /// Whether the pool runs jobs inline on the submitting thread.
    pub fn is_inline(&self) -> bool {
        self.workers.is_empty()
    }

    /// Submits a job, failing fast if the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`PoolSaturated`] when the queue is full (or the pool is
    /// shutting down — late work is shed, not run).
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolSaturated> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(PoolSaturated {
                capacity: self.inner.capacity,
            });
        }
        if self.is_inline() {
            // Inline mode still honors the catch_unwind backstop.
            let _ = catch_unwind(AssertUnwindSafe(job));
            return Ok(());
        }
        let mut jobs = lock_or_recover(&self.inner.jobs);
        if jobs.len() >= self.inner.capacity {
            return Err(PoolSaturated {
                capacity: self.inner.capacity,
            });
        }
        jobs.push_back(Box::new(job));
        drop(jobs);
        self.inner.job_ready.notify_one();
        Ok(())
    }

    /// Current queue depth (for admission heuristics and tests).
    pub fn queued(&self) -> usize {
        lock_or_recover(&self.inner.jobs).len()
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.job_ready.notify_all();
        for h in self.workers.drain(..) {
            // A worker that panicked already had the panic swallowed by
            // its catch_unwind; a join error here can only mean a panic
            // in the loop glue itself, which leaves nothing to salvage.
            let _ = h.join();
        }
    }
}

impl Drop for BoundedPool {
    fn drop(&mut self) {
        // Dropping without shutdown() still terminates the workers so
        // tests cannot leak threads.
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.job_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut jobs = lock_or_recover(&inner.jobs);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if inner.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                jobs = inner
                    .job_ready
                    .wait(jobs)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_and_reports_saturation() {
        let pool = BoundedPool::new(2, 4);
        let ran = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..16 {
            // Retry on saturation: with a capacity-4 queue some of 16
            // rapid submissions must be refused at least transiently.
            loop {
                let ran = Arc::clone(&ran);
                let tx = tx.clone();
                match pool.try_submit(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(());
                }) {
                    Ok(()) => break,
                    Err(PoolSaturated { capacity }) => {
                        assert_eq!(capacity, 4);
                        std::thread::yield_now();
                    }
                }
            }
        }
        for _ in 0..16 {
            rx.recv().expect("all jobs complete");
        }
        assert_eq!(ran.load(Ordering::Relaxed), 16);
        pool.shutdown();
    }

    #[test]
    fn worker_survives_job_panic() {
        let pool = BoundedPool::new(1, 4);
        let (tx, rx) = mpsc::channel();
        crate::silence_expected_panics();
        loop {
            match pool.try_submit(|| panic!("{} (pool test)", crate::chaos::CHAOS_PANIC_MARKER)) {
                Ok(()) => break,
                Err(_) => std::thread::yield_now(),
            }
        }
        loop {
            let tx = tx.clone();
            match pool.try_submit(move || {
                let _ = tx.send(7);
            }) {
                Ok(()) => break,
                Err(_) => std::thread::yield_now(),
            }
        }
        assert_eq!(rx.recv().expect("worker still alive"), 7);
        pool.shutdown();
    }

    #[test]
    fn inline_pool_runs_on_caller() {
        let pool = BoundedPool::new(0, 4);
        assert!(pool.is_inline());
        let mut hit = false;
        {
            let hit = &mut hit;
            // Inline jobs may borrow: extend the closure over a scope.
            let cell = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&cell);
            pool.try_submit(move || {
                c2.store(3, Ordering::Relaxed);
            })
            .expect("inline never saturates");
            *hit = cell.load(Ordering::Relaxed) == 3;
        }
        assert!(hit);
    }
}
