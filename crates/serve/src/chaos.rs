//! Deterministic fault injection for the serve chaos harness.
//!
//! Mirrors the sweep engine's chaos design: every injection decision is
//! a pure function of `(seed, session, step, attempt)`, so a chaos run
//! is exactly reproducible — re-running with the same seed injects the
//! same panics at the same slices, which is what lets the selftest
//! assert bit-identical recovery instead of merely "it didn't crash".
//!
//! The serve crate deliberately does not depend on `xylem-sweep` (the
//! workspace CLI bin lives in the sweep package and depends on serve,
//! so a lib-level dependency back onto sweep would be a package cycle);
//! the mixer is small enough to own.

/// What chaos decided to do to one slice attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Run the slice normally.
    None,
    /// Panic inside the slice (exercises `catch_unwind` isolation).
    Panic,
    /// Fail the slice with a synthetic solver error (exercises retry).
    Error,
    /// Miss the slice deadline (exercises the degradation ladder).
    Deadline,
}

/// Per-server fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Probability of an injected panic, per mille.
    pub panic_per_mille: u16,
    /// Probability of a synthetic solver error, per mille.
    pub error_per_mille: u16,
    /// Probability of a synthetic deadline miss, per mille.
    pub deadline_per_mille: u16,
}

impl ChaosConfig {
    /// A configuration that injects nothing (useful as a base).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_per_mille: 0,
            error_per_mille: 0,
            deadline_per_mille: 0,
        }
    }

    /// Decides the fate of one slice attempt.
    ///
    /// `session_key` is a stable hash of the session id, `step` the
    /// state's step counter at slice start, `attempt` the retry count.
    /// Faults are mutually exclusive and checked in panic → error →
    /// deadline order over one uniform draw.
    pub fn decide(&self, session_key: u64, step: u64, attempt: u32) -> ChaosOutcome {
        let key = session_key ^ step.rotate_left(17) ^ (u64::from(attempt) << 48);
        let draw = splitmix64(self.seed ^ splitmix64(key)) % 1000;
        let p = u64::from(self.panic_per_mille);
        let e = u64::from(self.error_per_mille);
        let d = u64::from(self.deadline_per_mille);
        if draw < p {
            ChaosOutcome::Panic
        } else if draw < p + e {
            ChaosOutcome::Error
        } else if draw < p + e + d {
            ChaosOutcome::Deadline
        } else {
            ChaosOutcome::None
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice; the workspace's standard cheap stable hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Extends an FNV-1a chain with one `u64` (little-endian bytes).
pub fn fnv1a_extend(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The marker every injected panic's payload starts with; the panic
/// hook filter and the outcome classifier both key on it.
pub const CHAOS_PANIC_MARKER: &str = "chaos: injected panic";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_mixed() {
        let c = ChaosConfig {
            seed: 42,
            panic_per_mille: 100,
            error_per_mille: 100,
            deadline_per_mille: 100,
        };
        let mut counts = [0usize; 4];
        for s in 0..200u64 {
            for step in 0..5u64 {
                let a = c.decide(s, step, 0);
                let b = c.decide(s, step, 0);
                assert_eq!(a, b, "decision must be a pure function");
                counts[match a {
                    ChaosOutcome::None => 0,
                    ChaosOutcome::Panic => 1,
                    ChaosOutcome::Error => 2,
                    ChaosOutcome::Deadline => 3,
                }] += 1;
            }
        }
        // 10% each over 1000 draws: every class must actually occur.
        assert!(
            counts[1] > 10 && counts[2] > 10 && counts[3] > 10,
            "{counts:?}"
        );
        assert!(counts[0] > counts[1], "{counts:?}");
    }

    #[test]
    fn attempts_redraw_independently() {
        let c = ChaosConfig {
            seed: 7,
            panic_per_mille: 500,
            error_per_mille: 0,
            deadline_per_mille: 0,
        };
        // Across many sessions, at least one flips outcome between
        // attempt 0 and attempt 1 — retries are not doomed to repeat.
        let flipped = (0..100u64).any(|s| c.decide(s, 0, 0) != c.decide(s, 0, 1));
        assert!(flipped);
    }

    #[test]
    fn quiet_injects_nothing() {
        let c = ChaosConfig::quiet(9);
        for s in 0..50 {
            assert_eq!(c.decide(s, 3, 1), ChaosOutcome::None);
        }
    }
}
