//! The SIGKILL drill as a regression test: kill -9 a child server
//! mid-run, resume its spool in-process, and require bit-identical
//! frames with zero duplicates against an uninterrupted reference.
//!
//! Child-process pattern: the test binary re-invokes itself with
//! `XYLEM_SERVE_CRASH_CHILD` set, which turns the `crash_child_body`
//! "test" into the drill child's main loop. SIGKILL gives the child no
//! chance to flush or unwind — exactly the failure the crash-only
//! design must absorb.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use xylem_serve::selftest::{frame_set, run_drill_child};
use xylem_serve::{Server, ServerConfig};

const CHILD_ENV: &str = "XYLEM_SERVE_CRASH_CHILD";
const SEED: u64 = 0x51_6B11;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xylem-serve-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Not a test of anything by itself: when the env var is set, this is
/// the drill child's body. Without it, it no-ops (and "passes").
#[test]
fn crash_child_body() {
    let Ok(spool) = std::env::var(CHILD_ENV) else {
        return;
    };
    // Paced so the parent's SIGKILL lands mid-run.
    run_drill_child(std::path::Path::new(&spool), SEED, 3).expect("drill child runs");
}

#[test]
fn sigkill_mid_run_resumes_bit_identically_with_zero_duplicate_frames() {
    let drill_dir = tmp("drill");
    std::fs::create_dir_all(&drill_dir).expect("mkdir");

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(&exe)
        .args(["crash_child_body", "--exact", "--test-threads=1"])
        .env(CHILD_ENV, &drill_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn drill child");

    // Wait for durable progress, then SIGKILL mid-run.
    let frames_path = drill_dir.join("frames.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let lines = std::fs::read_to_string(&frames_path)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 20 {
            break;
        }
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "drill child finished before the kill; slow it down"
        );
        assert!(
            Instant::now() < deadline,
            "drill child made no progress in 120s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Resume the killed spool in-process and finish every session.
    let mut cfg = ServerConfig::new(&drill_dir);
    cfg.workers = 2;
    cfg.round_slots = 4;
    cfg.sync = true;
    let (mut server, resume) = Server::open(cfg).expect("resume over killed spool");
    assert!(resume.resumed > 0, "the kill must land mid-flight");
    server.run_until_settled(200_000).expect("settles");
    assert_eq!(
        server.status().quarantined,
        0,
        "a crash is not a session fault"
    );
    let done = server.status().done;
    server.shutdown();

    // Reference: the identical fleet, never killed.
    let ref_dir = tmp("ref");
    run_drill_child(&ref_dir, SEED, 0).expect("reference run");

    // frame_set fails on any duplicate (id, idx): zero-duplicates is
    // checked by construction, bit-identity by comparison.
    let killed = frame_set(&drill_dir).expect("killed journal has zero duplicate frames");
    let reference = frame_set(&ref_dir).expect("reference journal well-formed");
    assert_eq!(
        killed, reference,
        "killed+resumed frames must be bit-identical to the uninterrupted run"
    );
    assert_eq!(done, 12, "all drill sessions complete");

    let _ = std::fs::remove_dir_all(&drill_dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
