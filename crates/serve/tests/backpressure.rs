//! Admission control: explicit backpressure, tenant quotas, permanent
//! rejections, slow-client shedding, and graceful-restart resume.

use std::path::PathBuf;

use xylem_obs::metrics::{counter, Counter};
use xylem_serve::selftest::frame_set;
use xylem_serve::{Server, ServerConfig, Submission, SubmitParams, TenantQuota};

const MINIMAL: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 4 , 4 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
output :
    probe hot max in body ;
";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xylem-serve-bp-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg(dir: &PathBuf) -> ServerConfig {
    let mut cfg = ServerConfig::new(dir);
    cfg.workers = 0;
    cfg.round_slots = 4;
    cfg.queue_cap = 8;
    cfg.quota = TenantQuota {
        max_active: 4,
        max_active_steps: 1 << 16,
    };
    cfg.sync = false;
    cfg
}

/// 64 submissions against a queue of 8: overload yields transient
/// rejections with retry hints, and a retry loop eventually lands
/// every job — overload degrades throughput, never correctness.
#[test]
fn overload_rejects_with_retry_after_then_admits() {
    let dir = tmp("overload");
    let (mut server, _) = Server::open(small_cfg(&dir)).expect("open");
    let params = SubmitParams {
        steps: 4,
        ..SubmitParams::default()
    };

    let mut pending = 64usize;
    let mut transient_rejects = 0u64;
    let mut admitted = 0usize;
    let mut spins = 0u64;
    while pending > 0 {
        match server.submit("t", MINIMAL, &params).expect("no fault") {
            Submission::Admitted(_) => {
                admitted += 1;
                pending -= 1;
            }
            Submission::Rejected(r) => {
                assert!(r.is_transient(), "overload must be transient: {r}");
                assert!(
                    r.retry_after_ms.is_some_and(|ms| ms > 0),
                    "retry hint must be positive: {r}"
                );
                transient_rejects += 1;
                // "Wait" by letting the server make progress, exactly
                // what a client backoff buys in wall time.
                server.tick().expect("tick");
            }
        }
        spins += 1;
        assert!(spins < 100_000, "retry loop failed to converge");
    }
    assert_eq!(admitted, 64);
    assert!(
        transient_rejects > 0,
        "a 64-job burst against queue_cap=8 must see backpressure"
    );
    server.run_until_settled(100_000).expect("settles");
    assert_eq!(server.status().done, 64);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The per-tenant quota rejects tenant B's fifth session while tenant
/// C (under quota) is still admitted — quotas isolate tenants.
#[test]
fn tenant_quota_is_per_tenant() {
    let dir = tmp("quota");
    let (mut server, _) = Server::open(small_cfg(&dir)).expect("open");
    let params = SubmitParams {
        steps: 4,
        ..SubmitParams::default()
    };
    for _ in 0..4 {
        match server.submit("b", MINIMAL, &params).expect("ok") {
            Submission::Admitted(_) => {}
            Submission::Rejected(r) => panic!("under quota yet rejected: {r}"),
        }
    }
    match server.submit("b", MINIMAL, &params).expect("ok") {
        Submission::Rejected(r) => assert!(r.is_transient()),
        Submission::Admitted(_) => panic!("5th session must exceed max_active=4"),
    }
    match server.submit("c", MINIMAL, &params).expect("ok") {
        Submission::Admitted(_) => {}
        Submission::Rejected(r) => panic!("tenant c is under quota: {r}"),
    }
    server.run_until_settled(100_000).expect("settles");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed scenarios and insane parameters are permanent rejections
/// (no retry hint) and never enter the queue.
#[test]
fn invalid_submissions_reject_permanently() {
    let dir = tmp("invalid");
    let (mut server, _) = Server::open(small_cfg(&dir)).expect("open");
    let ok = SubmitParams {
        steps: 4,
        ..SubmitParams::default()
    };
    match server.submit("t", "material ;", &ok).expect("no fault") {
        Submission::Rejected(r) => {
            assert!(!r.is_transient(), "parse failure must be permanent: {r}");
        }
        Submission::Admitted(_) => panic!("malformed scenario admitted"),
    }
    let bad_dt = SubmitParams {
        dt_s: f64::NAN,
        ..ok.clone()
    };
    match server.submit("t", MINIMAL, &bad_dt).expect("no fault") {
        Submission::Rejected(r) => assert!(!r.is_transient()),
        Submission::Admitted(_) => panic!("NaN dt admitted"),
    }
    assert_eq!(server.status().active, 0, "rejections must not enqueue");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that never drains loses only buffered convenience lines:
/// the journal keeps every frame, the buffer sheds oldest-first and
/// says so once.
#[test]
fn slow_client_sheds_lines_but_frames_stay_durable() {
    let dir = tmp("slowclient");
    let mut cfg = small_cfg(&dir);
    cfg.client_buffer_cap = 4;
    cfg.sync = true;
    let (mut server, _) = Server::open(cfg).expect("open");
    let params = SubmitParams {
        steps: 24,
        frame_every: 2, // 12 frames >> buffer cap of 4
        ..SubmitParams::default()
    };
    let shed0 = counter(Counter::ServeSlowClientSheds);
    let id = match server.submit("t", MINIMAL, &params).expect("ok") {
        Submission::Admitted(id) => id,
        Submission::Rejected(r) => panic!("rejected: {r}"),
    };
    server.run_until_settled(100_000).expect("settles");
    assert!(
        counter(Counter::ServeSlowClientSheds) > shed0,
        "a 12-frame session against a 4-line buffer must shed"
    );
    let lines = server.drain_output(id);
    assert!(lines.len() <= 5, "buffer respects its cap: {}", lines.len());
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"overflow\"")),
        "shedding must be announced: {lines:?}"
    );
    // Every frame the buffer dropped is still in the durable journal.
    let frames = frame_set(&dir).expect("journal intact, no duplicates");
    let session_frames = frames.keys().filter(|(fid, _)| *fid == id).count();
    assert_eq!(session_frames, 12, "journal has all frames");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful restart: drop a server mid-run, reopen over the same
/// spool, and finish. No duplicate frames, every session completes,
/// and resumed sessions are counted.
#[test]
fn restart_mid_run_resumes_without_duplicates() {
    let dir = tmp("restart");
    let mut cfg = small_cfg(&dir);
    cfg.sync = true;
    let params = SubmitParams {
        steps: 12,
        frame_every: 2,
        ..SubmitParams::default()
    };
    {
        let (mut server, _) = Server::open(cfg.clone()).expect("open");
        for _ in 0..4 {
            match server.submit("t", MINIMAL, &params).expect("ok") {
                Submission::Admitted(_) => {}
                Submission::Rejected(r) => panic!("rejected: {r}"),
            }
        }
        // Run partway: some frames out, nothing done.
        for _ in 0..3 {
            server.tick().expect("tick");
        }
        assert!(server.status().active > 0);
        server.shutdown();
    }
    let (mut server, resume) = Server::open(cfg).expect("reopen");
    assert!(resume.resumed > 0, "mid-flight sessions must be resumed");
    server.run_until_settled(100_000).expect("settles");
    assert_eq!(server.status().done, 4);
    assert_eq!(server.status().quarantined, 0);
    let frames = frame_set(&dir).expect("no duplicate frames across restart");
    assert_eq!(frames.len(), 4 * 6, "12 steps / stride 2 = 6 frames each");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
