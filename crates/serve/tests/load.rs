//! Load smoke and the tenant-fairness regression.
//!
//! Both tests run the scheduler in inline mode (`workers = 0`) so
//! every latency is measured in deterministic scheduler ticks — the
//! fairness bound below is a locked constant, not a wall-clock
//! heuristic that flakes on a loaded CI box.

use std::path::PathBuf;

use xylem_serve::selftest::client_fleet;
use xylem_serve::{Server, ServerConfig, Submission, SubmitParams, TenantQuota};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xylem-serve-load-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// ≥64 concurrent sessions across 8 tenants all complete, none
/// quarantined, every admitted session reaches a terminal state.
#[test]
fn sixty_four_sessions_all_complete() {
    let dir = tmp("smoke64");
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 0;
    cfg.round_slots = 8;
    cfg.queue_cap = 128;
    cfg.quota = TenantQuota {
        max_active: 16,
        max_active_steps: 1 << 20,
    };
    cfg.sync = false;
    let (mut server, _) = Server::open(cfg).expect("open");

    let fleet = client_fleet(0xBEEF, 64, 8);
    let mut admitted = 0usize;
    for job in &fleet {
        match server
            .submit(&job.tenant, &job.scenario, &job.params)
            .expect("no infrastructure fault")
        {
            Submission::Admitted(_) => admitted += 1,
            Submission::Rejected(r) => panic!("unexpected rejection under capacity: {r}"),
        }
    }
    assert_eq!(admitted, 64);
    server.run_until_settled(100_000).expect("settles");
    let st = server.status();
    assert_eq!(st.active, 0);
    assert_eq!(st.done, 64, "every session completes");
    assert_eq!(st.quarantined, 0, "no quarantines without chaos");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

const MINIMAL: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 4 , 4 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
output :
    probe hot max in body ;
";

/// Runs alice's 16 small sessions (optionally against a bully tenant
/// with 10x-oversized jobs) and returns the p99 of alice's
/// submit-to-done latency in scheduler ticks.
fn alice_p99_ticks(dir: &PathBuf, with_bully: bool) -> u64 {
    let mut cfg = ServerConfig::new(dir);
    cfg.workers = 0;
    cfg.round_slots = 4;
    cfg.queue_cap = 128;
    cfg.quota = TenantQuota {
        max_active: 32,
        max_active_steps: 1 << 20,
    };
    cfg.sync = false;
    let (mut server, _) = Server::open(cfg).expect("open");

    let small = SubmitParams {
        steps: 4,
        frame_every: 2,
        ..SubmitParams::default()
    };
    let oversized = SubmitParams {
        steps: 40, // 10x alice's work per session
        frame_every: 2,
        ..SubmitParams::default()
    };
    let mut alice_ids = Vec::new();
    for i in 0..16 {
        // Interleave so the bully's backlog is already queued ahead of
        // most of alice's submissions — the worst case for FIFO, the
        // case round-robin must neutralize.
        if with_bully {
            match server.submit("bully", MINIMAL, &oversized).expect("ok") {
                Submission::Admitted(_) => {}
                Submission::Rejected(r) => panic!("bully rejected: {r}"),
            }
        }
        match server.submit("alice", MINIMAL, &small).expect("ok") {
            Submission::Admitted(id) => alice_ids.push(id),
            Submission::Rejected(r) => panic!("alice rejected: {r}"),
        }
        let _ = i;
    }
    server.run_until_settled(100_000).expect("settles");
    let mut latencies: Vec<u64> = alice_ids
        .iter()
        .map(|&id| {
            let (submit, _, done) = server
                .completion_ticks(id)
                .expect("alice session completed");
            done - submit
        })
        .collect();
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99)
        .div_ceil(100)
        .saturating_sub(1)
        .min(latencies.len() - 1)];
    server.shutdown();
    p99
}

/// Fairness regression: a tenant submitting 10x-oversized jobs must
/// not raise another tenant's p99 submit-to-done latency beyond a
/// locked multiple of its solo baseline. Round-robin tenant scheduling
/// is what holds this bound; FIFO would blow it by ~10x.
#[test]
fn oversized_tenant_cannot_starve_another() {
    let solo_dir = tmp("fair-solo");
    let bully_dir = tmp("fair-bully");
    let solo_p99 = alice_p99_ticks(&solo_dir, false);
    let contended_p99 = alice_p99_ticks(&bully_dir, true);
    // Locked bound: with one equal-priority competitor, round-robin
    // hands alice at least half the slots, so her p99 may at most
    // double, plus 2 ticks of scheduling slack. (The bully's sessions
    // being 10x longer is exactly what must NOT leak into the bound.)
    assert!(
        contended_p99 <= 2 * solo_p99 + 2,
        "fairness regression: alice p99 {contended_p99} ticks vs solo {solo_p99} ticks"
    );
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&bully_dir);
}
