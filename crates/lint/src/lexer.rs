//! A minimal Rust lexer: just enough to walk token streams for the lint
//! rules without a full parser.
//!
//! The lexer understands the parts of the grammar that would otherwise
//! produce false matches inside non-code text: line and (nested) block
//! comments, string literals (including raw and byte strings), character
//! literals vs. lifetimes, and numeric literals with exponents and type
//! suffixes. Everything else becomes single-character punctuation.

/// Token categories the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (integer or float, any base).
    Number,
    /// String / byte-string literal (escapes unresolved).
    Str,
    /// Character / byte-character literal.
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Raw text (for `Str`, without quotes resolved; for `Punct`, one char).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A lexing failure with its source line.
#[derive(Debug, Clone)]
pub struct LexError {
    /// 1-indexed line of the offending construct.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated comments or literals.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                loop {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => {
                            return Err(LexError {
                                line,
                                msg: "unterminated block comment".into(),
                            })
                        }
                    }
                }
            }
            b'"' => out.push(lex_string(&mut c, line)?),
            b'\'' => out.push(lex_char_or_lifetime(&mut c, line)?),
            b'r' | b'b' if starts_string_prefix(&c) => out.push(lex_prefixed_string(&mut c, line)?),
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => out.push(lex_number(&mut c, line)),
            _ => {
                c.bump();
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    Ok(out)
}

/// Whether the cursor sits on a raw/byte string prefix (`r"`, `r#"`,
/// `b"`, `b'`, `br"`, `br#"`) rather than a plain identifier.
fn starts_string_prefix(c: &Cursor<'_>) -> bool {
    let rest = &c.src[c.pos..];
    let after = |skip: usize| rest.get(skip).copied();
    match rest.first() {
        Some(b'r') => {
            matches!(after(1), Some(b'"') | Some(b'#')) && raw_hashes_lead_to_quote(rest, 1)
        }
        Some(b'b') => match after(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_hashes_lead_to_quote(rest, 2),
            _ => false,
        },
        _ => false,
    }
}

fn raw_hashes_lead_to_quote(rest: &[u8], mut i: usize) -> bool {
    while rest.get(i) == Some(&b'#') {
        i += 1;
    }
    rest.get(i) == Some(&b'"')
}

fn lex_string(c: &mut Cursor<'_>, line: u32) -> Result<Tok, LexError> {
    c.bump(); // opening quote
    let start = c.pos;
    loop {
        match c.peek() {
            Some(b'\\') => {
                c.bump();
                c.bump();
            }
            Some(b'"') => {
                let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                c.bump();
                return Ok(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
            }
            Some(_) => {
                c.bump();
            }
            None => {
                return Err(LexError {
                    line,
                    msg: "unterminated string literal".into(),
                })
            }
        }
    }
}

fn lex_prefixed_string(c: &mut Cursor<'_>, line: u32) -> Result<Tok, LexError> {
    // Consume the `r` / `b` / `br` prefix.
    if c.peek() == Some(b'b') {
        c.bump();
    }
    if c.peek() == Some(b'r') {
        c.bump();
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            c.bump();
            hashes += 1;
        }
        if c.peek() != Some(b'"') {
            return Err(LexError {
                line,
                msg: "malformed raw string prefix".into(),
            });
        }
        c.bump();
        let start = c.pos;
        loop {
            match c.peek() {
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if c.peek_at(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                        c.bump();
                        for _ in 0..hashes {
                            c.bump();
                        }
                        return Ok(Tok {
                            kind: TokKind::Str,
                            text,
                            line,
                        });
                    }
                    c.bump();
                }
                Some(_) => {
                    c.bump();
                }
                None => {
                    return Err(LexError {
                        line,
                        msg: "unterminated raw string literal".into(),
                    })
                }
            }
        }
    }
    // Plain byte string or byte char after the `b` prefix.
    match c.peek() {
        Some(b'"') => lex_string(c, line),
        Some(b'\'') => lex_char_or_lifetime(c, line),
        _ => Err(LexError {
            line,
            msg: "malformed byte literal prefix".into(),
        }),
    }
}

fn lex_char_or_lifetime(c: &mut Cursor<'_>, line: u32) -> Result<Tok, LexError> {
    c.bump(); // opening quote
              // Lifetime: 'ident not followed by a closing quote.
    if c.peek().is_some_and(is_ident_start) {
        let mut i = 1;
        while c.peek_at(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        if c.peek_at(i) != Some(b'\'') {
            let start = c.pos;
            for _ in 0..i {
                c.bump();
            }
            return Ok(Tok {
                kind: TokKind::Lifetime,
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
            });
        }
    }
    let start = c.pos;
    loop {
        match c.peek() {
            Some(b'\\') => {
                c.bump();
                c.bump();
            }
            Some(b'\'') => {
                let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                c.bump();
                return Ok(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                });
            }
            Some(_) => {
                c.bump();
            }
            None => {
                return Err(LexError {
                    line,
                    msg: "unterminated character literal".into(),
                })
            }
        }
    }
}

fn lex_number(c: &mut Cursor<'_>, line: u32) -> Tok {
    let start = c.pos;
    while let Some(b) = c.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            c.bump();
            // Signed exponent: `1e-3`, `2.5E+6`.
            if (b == b'e' || b == b'E')
                && !c.src[start..c.pos].starts_with(b"0x")
                && matches!(c.peek(), Some(b'+') | Some(b'-'))
                && c.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                c.bump();
            }
        } else if b == b'.' {
            // A dot continues the number only when followed by a digit
            // (`1.5`) or end-of-number (`1.`): `0..4` and `1.max(2)` stop.
            match c.peek_at(1) {
                Some(d) if d.is_ascii_digit() => {
                    c.bump();
                }
                Some(b'.') => break,
                Some(d) if is_ident_start(d) => break,
                _ => {
                    c.bump();
                    break;
                }
            }
        } else {
            break;
        }
    }
    Tok {
        kind: TokKind::Number,
        text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // unwrap()\n/* pub fn /* nested */ */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r##"x = "fn unwrap()"; y = r#"raw "quote" inside"# ;"##);
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let toks = kinds("273.15 1.75e6 1e-3 0x1F 2.4f64 0..4 1.max(2)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["273.15", "1.75e6", "1e-3", "0x1F", "2.4f64", "0", "4", "1", "2"]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").expect("lexes");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
