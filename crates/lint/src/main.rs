//! CLI entry point: `cargo run -p xylem-lint [workspace-root]`.
//!
//! Prints one `path:line: [rule] message` per finding and exits with
//! status 1 if any survive the allowlist, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args_os().skip(1);
    let root = match (args.next(), args.next()) {
        (None, _) => default_root(),
        (Some(p), None) => PathBuf::from(p),
        (Some(_), Some(_)) => {
            eprintln!("usage: xylem-lint [workspace-root]");
            return ExitCode::from(2);
        }
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "xylem-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match xylem_lint::check_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xylem-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for d in &findings {
                println!("{d}");
            }
            println!(
                "xylem-lint: {} finding(s); fix them or add entries to xylem-lint.allow",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xylem-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Default to the workspace root two levels above this crate's manifest,
/// so `cargo run -p xylem-lint` works from any directory.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}
