//! CLI entry point: `cargo run -p xylem-lint [--json] [--allow-stale]
//! [workspace-root]`.
//!
//! Prints one `path:line: [rule] message` per finding (or one JSON
//! object per line with `--json`) and exits with status 1 if any finding
//! or stale allowlist/baseline entry survives, 2 on usage/IO errors.
//! `--allow-stale` downgrades stale entries to warnings for bring-up.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut allow_stale = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args_os().skip(1) {
        match arg.to_str() {
            Some("--json") => json = true,
            Some("--allow-stale") => allow_stale = true,
            Some(s) if s.starts_with("--") => {
                eprintln!("usage: xylem-lint [--json] [--allow-stale] [workspace-root]");
                return ExitCode::from(2);
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("usage: xylem-lint [--json] [--allow-stale] [workspace-root]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "xylem-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let report = match xylem_lint::audit_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xylem-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let stale_diags: Vec<_> = report.stale.iter().map(|s| s.to_diagnostic()).collect();
    if json {
        for d in report.findings.iter().chain(&stale_diags) {
            println!("{}", d.to_json());
        }
    } else {
        for d in &report.findings {
            println!("{d}");
        }
        for d in &stale_diags {
            if allow_stale {
                println!("warning (stale, allowed): {d}");
            } else {
                println!("{d}");
            }
        }
        let verdict = if report.is_clean(allow_stale) {
            "clean"
        } else {
            "FAILED"
        };
        println!(
            "xylem-lint: {} finding(s), {} suppressed, {} stale entr(ies) — {verdict}",
            report.findings.len(),
            report.suppressed,
            report.stale.len(),
        );
    }
    if report.is_clean(allow_stale) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Default to the workspace root two levels above this crate's manifest,
/// so `cargo run -p xylem-lint` works from any directory.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}
