//! Pass 1 of the two-pass analyzer: a lightweight per-file symbol table
//! built over the token stream.
//!
//! The table records just enough structure for the dataflow-aware rules
//! in pass 2 without a real parser:
//!
//! * **Zone classification** — which determinism zone the file lives in,
//!   derived from its workspace path: *hot-path* (solver, DTM loop,
//!   adaptive controller, response cache — anywhere bit-identical results
//!   are a published claim), *instrumented* (the `xylem-obs` no-println
//!   set), or *free* (everything else).
//! * **`use` imports** — flattened to `(leaf name, full path)` pairs so
//!   rules can tell `std::collections::HashMap` from a local `HashMap`.
//! * **Function spans** — name, signature range, and brace-matched body
//!   range for every `fn`, nested ones included, so findings can be
//!   attributed to the innermost enclosing function.
//! * **Unit-newtype bindings** — locals and parameters bound to one of
//!   the `xylem_thermal::units` newtypes (`Celsius`, `Kelvin`, `Watts`,
//!   ...), from `let x: Celsius`, `let x = Celsius::new(...)`, and
//!   `fn f(x: Celsius)` shapes. Rule `no-unit-escape` uses these to
//!   catch `.0` field projections that bypass the dimensional layer.
//! * **Float accumulators** — `let mut acc = 0.0;`-shaped locals (a
//!   float-literal initializer is the signature of a from-scratch
//!   reduction, as opposed to row-local stencil accumulators that start
//!   from an existing element). Rule `no-raw-accumulation` flags `+=`
//!   folds into these in hot-path files.
//!
//! The pass is total: any token stream (including fuzzer byte soup)
//! yields a table, never a panic.

use crate::lexer::{Tok, TokKind};

/// The physical-quantity newtypes of `xylem_thermal::units`. A `.0`
/// projection on a binding of one of these types bypasses the
/// dimensional layer (rule `no-unit-escape`).
pub const UNIT_TYPES: &[&str] = &[
    "Celsius",
    "Kelvin",
    "Watts",
    "WattsPerMeterKelvin",
    "VolumetricHeatCapacity",
];

/// Hot-path files: the modules whose results are claimed bit-identical
/// across thread counts (solver core, DTM loop, adaptive controller,
/// response cache). Nondeterministic collections and raw accumulation
/// folds are banned here.
pub const HOT_PATH_SUFFIXES: &[&str] = &[
    "crates/thermal/src/solve.rs",
    "crates/thermal/src/amg.rs",
    "crates/thermal/src/gmg.rs",
    "crates/thermal/src/csr.rs",
    "crates/thermal/src/stencil.rs",
    "crates/thermal/src/adaptive.rs",
    "crates/thermal/src/model.rs",
    "crates/thermal/src/reduce.rs",
    "crates/core/src/dtm.rs",
    "crates/core/src/response.rs",
    "crates/core/src/headroom.rs",
    "crates/sweep/src/engine.rs",
    "crates/sweep/src/journal.rs",
    "crates/sweep/src/spec.rs",
    "crates/sweep/src/backoff.rs",
    // Scenario lowering: identical .stk sources must lower to
    // bit-identical stacks (the golden-equivalence and determinism
    // suites assert it), so patch order and material resolution may
    // not depend on hash iteration or raw float folds.
    "crates/scenario/src/lower.rs",
    // Serve slice execution: resumed runs are claimed bit-identical to
    // uninterrupted ones, which holds only if slice composition is
    // deterministic — no hash-ordered iteration, no raw float folds.
    "crates/serve/src/session.rs",
];

/// Instrumented files: the `xylem-obs` no-println set (rule `no-println`
/// and rule `obs-coverage`).
pub const INSTRUMENTED_SUFFIXES: &[&str] = &[
    "crates/core/src/dtm.rs",
    "crates/core/src/sensor.rs",
    "crates/core/src/checkpoint.rs",
    "crates/thermal/src/solve.rs",
    "crates/thermal/src/model.rs",
    "crates/thermal/src/adaptive.rs",
    "crates/thermal/src/gmg.rs",
    "crates/thermal/src/stencil.rs",
    "crates/bench/src/harness.rs",
    "crates/sweep/src/engine.rs",
    "crates/sweep/src/journal.rs",
    // The serve scheduler's degradation ladder (retry, economy
    // stepping, suspend, quarantine) must never fire darkly: every
    // absorbed fault bumps a serve counter, and streamed output is
    // protocol JSON, never print-macro noise.
    "crates/serve/src/scheduler.rs",
];

/// Whole instrumented sub-trees (the obs crate owns the sink).
pub const INSTRUMENTED_PREFIXES: &[&str] = &["crates/obs/src/"];

/// Determinism-zone classification of one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Zone {
    /// Solver / DTM / adaptive / response-cache module: bit-identical
    /// results are a published claim here.
    pub hot_path: bool,
    /// Member of the `xylem-obs` instrumented set.
    pub instrumented: bool,
}

impl Zone {
    /// Classifies a workspace-relative path.
    #[must_use]
    pub fn of(relpath: &str) -> Zone {
        Zone {
            hot_path: HOT_PATH_SUFFIXES.iter().any(|s| relpath.ends_with(s)),
            instrumented: INSTRUMENTED_SUFFIXES.iter().any(|s| relpath.ends_with(s))
                || INSTRUMENTED_PREFIXES.iter().any(|p| relpath.starts_with(p)),
        }
    }

    /// Short label for diagnostics and the JSONL output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match (self.hot_path, self.instrumented) {
            (true, true) => "hot-path+instrumented",
            (true, false) => "hot-path",
            (false, true) => "instrumented",
            (false, false) => "free",
        }
    }
}

/// One function's entry in the symbol table.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function name (identifier after `fn`).
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the signature: from the `fn` keyword up to
    /// (not including) the body's opening brace.
    pub sig: std::ops::Range<usize>,
    /// Token-index range of the body, braces included. Empty for
    /// body-less declarations (trait methods).
    pub body: std::ops::Range<usize>,
    /// Names of locals/params bound to a unit newtype.
    pub unit_bindings: Vec<String>,
    /// Names of `let mut x = <float literal>` accumulator locals.
    pub float_accums: Vec<String>,
}

/// One flattened `use` import.
#[derive(Debug, Clone)]
pub struct Import {
    /// The name the import introduces into scope (last path segment, or
    /// the `as` alias).
    pub leaf: String,
    /// The full `::`-joined path.
    pub path: String,
}

/// The per-file symbol table.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Determinism-zone classification of the file.
    pub zone: Zone,
    /// Flattened `use` imports.
    pub imports: Vec<Import>,
    /// Every function in the file (nested functions included).
    pub fns: Vec<FnInfo>,
}

impl FileSymbols {
    /// Builds the symbol table for one file.
    #[must_use]
    pub fn build(relpath: &str, toks: &[Tok]) -> FileSymbols {
        let mut syms = FileSymbols {
            zone: Zone::of(relpath),
            imports: Vec::new(),
            fns: Vec::new(),
        };
        collect_imports(toks, &mut syms.imports);
        collect_fns(toks, &mut syms.fns);
        for f in &mut syms.fns {
            collect_bindings(toks, f);
        }
        syms
    }

    /// The innermost function whose body contains token `idx`.
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.len())
    }

    /// Whether the file imports `leaf` from a path containing `segment`
    /// (e.g. leaf `HashMap` from a path containing `collections`).
    #[must_use]
    pub fn imports_leaf(&self, leaf: &str) -> bool {
        self.imports.iter().any(|i| i.leaf == leaf)
    }
}

/// Collects `use` statements, flattening one level of `{...}` groups.
fn collect_imports(toks: &[Tok], out: &mut Vec<Import>) {
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        // A `use` is a statement only at item position; a preceding `.`
        // or `:` would mean something else entirely (there is no such
        // Rust, but fuzzed soup can produce it).
        let stmt_pos = i == 0 || !(toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
        if !stmt_pos {
            i += 1;
            continue;
        }
        // Collect until `;`, splitting on a single `{ ... }` group.
        let mut prefix: Vec<String> = Vec::new();
        let mut j = i + 1;
        let mut grouped = false;
        while j < toks.len() && !toks[j].is_punct(';') {
            let t = &toks[j];
            if t.kind == TokKind::Ident {
                prefix.push(t.text.clone());
            } else if t.is_punct('{') {
                grouped = true;
                // Flatten the group: each comma-separated run of idents
                // is one leaf path under the prefix so far.
                let base = prefix.clone();
                let mut leafseg: Vec<String> = Vec::new();
                j += 1;
                let mut depth = 1i32;
                while j < toks.len() && depth > 0 {
                    let g = &toks[j];
                    if g.is_punct('{') {
                        depth += 1;
                    } else if g.is_punct('}') {
                        depth -= 1;
                    } else if g.is_punct(',') && depth == 1 {
                        push_import(&base, &leafseg, out);
                        leafseg.clear();
                    } else if g.kind == TokKind::Ident {
                        leafseg.push(g.text.clone());
                    }
                    j += 1;
                }
                push_import(&base, &leafseg, out);
                continue;
            }
            j += 1;
        }
        if !grouped {
            push_import(&[], &prefix, out);
        }
        i = j + 1;
    }
}

fn push_import(base: &[String], rest: &[String], out: &mut Vec<Import>) {
    let mut segs: Vec<&str> = base.iter().map(String::as_str).collect();
    segs.extend(rest.iter().map(String::as_str));
    // `as` aliasing: `use a::B as C` — the leaf is the alias; drop the
    // `as` keyword itself from the path.
    if let Some(pos) = segs.iter().position(|s| *s == "as") {
        let alias = segs.get(pos + 1).copied();
        segs.truncate(pos);
        if let (Some(alias), false) = (alias, segs.is_empty()) {
            out.push(Import {
                leaf: alias.to_string(),
                path: segs.join("::"),
            });
        }
        return;
    }
    let Some(leaf) = segs.last() else { return };
    out.push(Import {
        leaf: (*leaf).to_string(),
        path: segs.join("::"),
    });
}

/// Collects every `fn` with its signature and brace-matched body span.
fn collect_fns(toks: &[Tok], out: &mut Vec<FnInfo>) {
    let mut i = 0;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("fn") || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Scan for the body `{` at paren/bracket depth 0; a `;` first
        // means a body-less declaration.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                body_open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else {
            out.push(FnInfo {
                name,
                line,
                sig: i..j.min(toks.len()),
                body: 0..0,
                unit_bindings: Vec::new(),
                float_accums: Vec::new(),
            });
            i = j.saturating_add(1).min(toks.len());
            continue;
        };
        // Brace-match the body.
        let mut k = open + 1;
        let mut braces = 1i32;
        while k < toks.len() && braces > 0 {
            if toks[k].is_punct('{') {
                braces += 1;
            } else if toks[k].is_punct('}') {
                braces -= 1;
            }
            k += 1;
        }
        out.push(FnInfo {
            name,
            line,
            sig: i..open,
            body: open..k,
            unit_bindings: Vec::new(),
            float_accums: Vec::new(),
        });
        // Continue scanning *inside* the body too: nested fns get their
        // own entries.
        i += 2;
    }
}

/// Fills `unit_bindings` and `float_accums` for one function from its
/// signature and body tokens.
fn collect_bindings(toks: &[Tok], f: &mut FnInfo) {
    // Parameters: `ident : [&] [mut] UnitType` inside the signature.
    let sig = &toks[f.sig.start.min(toks.len())..f.sig.end.min(toks.len())];
    for w in 0..sig.len() {
        if sig[w].kind != TokKind::Ident || !sig.get(w + 1).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        // Skip the `::` path separator: `Celsius :: new`.
        if sig.get(w + 2).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        let mut k = w + 2;
        while sig
            .get(k)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime)
        {
            k += 1;
        }
        if sig
            .get(k)
            .is_some_and(|t| UNIT_TYPES.iter().any(|u| t.is_ident(u)))
        {
            f.unit_bindings.push(sig[w].text.clone());
        }
    }
    // Locals: `let [mut] ident ...` inside the body.
    let body = f.body.start.min(toks.len())..f.body.end.min(toks.len());
    let mut i = body.start;
    while i < body.end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let is_mut = toks.get(j).is_some_and(|t| t.is_ident("mut"));
        if is_mut {
            j += 1;
        }
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i = j;
            continue;
        };
        let name = name_tok.text.clone();
        j += 1;
        // Optional `: Type` annotation.
        let mut annotated: Option<String> = None;
        if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && !toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            let mut k = j + 1;
            while toks.get(k).is_some_and(|t| {
                t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime
            }) {
                k += 1;
            }
            if let Some(t) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                annotated = Some(t.text.clone());
            }
            // Advance to the `=` (or statement end) after the annotation.
            while k < body.end
                && !toks[k].is_punct('=')
                && !toks[k].is_punct(';')
                && !toks[k].is_punct('{')
            {
                k += 1;
            }
            j = k;
        }
        if let Some(ty) = &annotated {
            if UNIT_TYPES.iter().any(|u| u == ty) {
                f.unit_bindings.push(name.clone());
            }
        }
        // Initializer shapes.
        if toks.get(j).is_some_and(|t| t.is_punct('=')) {
            let init = toks.get(j + 1);
            // `= UnitType :: ...` — a unit-newtype constructor.
            if init.is_some_and(|t| UNIT_TYPES.iter().any(|u| t.is_ident(u)))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 3).is_some_and(|t| t.is_punct(':'))
            {
                f.unit_bindings.push(name.clone());
            }
            // `let mut x = <float literal> ;` — a from-scratch float
            // accumulator (annotation, if any, must be f64).
            let ann_ok = annotated.as_deref().is_none_or(|a| a == "f64");
            if is_mut
                && ann_ok
                && init.is_some_and(|t| t.kind == TokKind::Number && is_float_literal(&t.text))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(';'))
            {
                f.float_accums.push(name.clone());
            }
        }
        i = j.max(i + 1);
    }
    f.unit_bindings.dedup();
    f.float_accums.dedup();
}

/// Whether a numeric-literal token spells a float (`0.0`, `1e-3`,
/// `2.5f64`, `0f64`) rather than an integer.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    if text.ends_with("f64") || text.ends_with("f32") {
        return true;
    }
    // An integer suffix wins over the exponent check: the `e` in
    // `0usize` is not an exponent.
    const INT_SUFFIXES: &[&str] = &[
        "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
    ];
    if INT_SUFFIXES.iter().any(|s| text.ends_with(s)) {
        return false;
    }
    text.contains('.') || text.contains(['e', 'E'])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(relpath: &str, src: &str) -> FileSymbols {
        FileSymbols::build(relpath, &lex(src).expect("fixture lexes"))
    }

    #[test]
    fn zones_classify_by_path() {
        assert_eq!(
            Zone::of("crates/thermal/src/solve.rs"),
            Zone {
                hot_path: true,
                instrumented: true
            }
        );
        assert_eq!(
            Zone::of("crates/core/src/response.rs"),
            Zone {
                hot_path: true,
                instrumented: false
            }
        );
        assert_eq!(
            Zone::of("crates/obs/src/sink.rs"),
            Zone {
                hot_path: false,
                instrumented: true
            }
        );
        // The matrix-free kernels and the geometric hierarchy joined
        // both zones together: hot-path (bit-identity claim) and
        // instrumented (setup/fallback telemetry).
        for pr7 in ["crates/thermal/src/stencil.rs", "crates/thermal/src/gmg.rs"] {
            assert_eq!(
                Zone::of(pr7),
                Zone {
                    hot_path: true,
                    instrumented: true
                },
                "{pr7}"
            );
        }
        // The sweep engine and its journal carry both the determinism
        // claim (bit-identical digests across shard counts) and failure
        // telemetry; the spec/backoff modules only the former.
        for sweep in ["crates/sweep/src/engine.rs", "crates/sweep/src/journal.rs"] {
            assert_eq!(
                Zone::of(sweep),
                Zone {
                    hot_path: true,
                    instrumented: true
                },
                "{sweep}"
            );
        }
        for sweep in ["crates/sweep/src/spec.rs", "crates/sweep/src/backoff.rs"] {
            assert_eq!(
                Zone::of(sweep),
                Zone {
                    hot_path: true,
                    instrumented: false
                },
                "{sweep}"
            );
        }
        // Scenario lowering carries the bit-identity claim (identical
        // sources -> identical stacks) but emits no telemetry of its
        // own; the crate root owns the counters.
        assert_eq!(
            Zone::of("crates/scenario/src/lower.rs"),
            Zone {
                hot_path: true,
                instrumented: false
            }
        );
        assert_eq!(Zone::of("crates/scenario/src/parser.rs"), Zone::default());
        assert_eq!(Zone::of("crates/stack/src/tsv.rs"), Zone::default());
        assert_eq!(Zone::of("crates/stack/src/tsv.rs").label(), "free");
    }

    #[test]
    fn imports_flatten_groups_and_aliases() {
        let s = build(
            "crates/core/src/x.rs",
            "use std::collections::{HashMap, BTreeMap};\n\
             use std::collections::HashSet as FastSet;\n\
             use crate::units::Celsius;\n",
        );
        assert!(s.imports_leaf("HashMap"));
        assert!(s.imports_leaf("BTreeMap"));
        assert!(s.imports_leaf("FastSet"));
        assert!(s.imports_leaf("Celsius"));
        let hm = s
            .imports
            .iter()
            .find(|i| i.leaf == "HashMap")
            .expect("HashMap import");
        assert_eq!(hm.path, "std::collections::HashMap");
        let alias = s
            .imports
            .iter()
            .find(|i| i.leaf == "FastSet")
            .expect("alias import");
        assert_eq!(alias.path, "std::collections::HashSet");
    }

    #[test]
    fn fn_spans_nest_and_enclose() {
        let s = build(
            "crates/core/src/x.rs",
            "fn outer() {\n let a = 1;\n fn inner() { let b = 2; }\n let c = 3;\n}\nfn after() {}",
        );
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "after"]);
        let toks = lex(
            "fn outer() {\n let a = 1;\n fn inner() { let b = 2; }\n let c = 3;\n}\nfn after() {}",
        )
        .expect("lexes");
        let b_idx = toks
            .iter()
            .position(|t| t.is_ident("b"))
            .expect("b present");
        assert_eq!(s.enclosing_fn(b_idx).expect("enclosed").name, "inner");
        let c_idx = toks
            .iter()
            .position(|t| t.is_ident("c"))
            .expect("c present");
        assert_eq!(s.enclosing_fn(c_idx).expect("enclosed").name, "outer");
    }

    #[test]
    fn unit_bindings_from_params_annotations_and_constructors() {
        let s = build(
            "crates/thermal/src/x.rs",
            "fn f(limit: Celsius, raw: f64) {\n\
               let t: Kelvin = limit.to_kelvin();\n\
               let w = Watts::new(raw);\n\
               let n = 3;\n\
             }",
        );
        let f = &s.fns[0];
        assert_eq!(f.unit_bindings, vec!["limit", "t", "w"]);
    }

    #[test]
    fn float_accums_require_mut_and_float_literal() {
        let s = build(
            "crates/thermal/src/x.rs",
            "fn f(xs: &[f64]) {\n\
               let mut acc = 0.0;\n\
               let mut n = 0;\n\
               let start = 1.5;\n\
               let mut t: f64 = 0.0;\n\
               let mut seeded = xs[0];\n\
             }",
        );
        let f = &s.fns[0];
        assert_eq!(f.float_accums, vec!["acc", "t"]);
    }

    #[test]
    fn bodyless_trait_methods_have_empty_bodies() {
        let s = build(
            "crates/core/src/x.rs",
            "trait T { fn m(&self) -> f64; }\nfn real() { let x = 1; }",
        );
        assert_eq!(s.fns.len(), 2);
        assert!(s.fns[0].body.is_empty());
        assert!(!s.fns[1].body.is_empty());
    }
}
