//! The five lint rules, operating on the lexer's token stream.
//!
//! * `f64-param` — public API functions of the physics crates must not take
//!   a raw `f64` where the parameter name says it is a physical quantity.
//! * `unwrap` — library code must not contain `.unwrap()` or message-free
//!   `panic!()`-family macros.
//! * `magic-float` — float literals matching known physical-constant
//!   magnitudes must live in the material/blocks tables, not inline.
//! * `no-panic-path` — the fault-tolerance-critical modules (the DTM
//!   loop, the solver ladder, sensors, checkpointing) must not contain
//!   `.expect()` or `.unwrap()` at all: these are exactly the places
//!   that run when something else already went wrong, so every failure
//!   must propagate as a `Result`.
//! * `no-println` — the modules instrumented with `xylem-obs` (and the
//!   obs crate itself) must not write to stdout/stderr directly: ad-hoc
//!   prints bypass the structured sink, corrupt piped JSONL output, and
//!   dodge the overhead accounting. Emit an event or record a metric
//!   instead; CLI binaries and examples keep their prints.

use crate::lexer::{Tok, TokKind};
use crate::{Allowlist, Diagnostic};

/// Crate sub-trees whose public API surface is units-checked (rule 1).
const UNITS_CHECKED_PREFIXES: &[&str] = &[
    "crates/thermal/src/",
    "crates/power/src/",
    "crates/core/src/",
];

/// Parameter-name fragments that indicate a physical quantity.
const QUANTITY_FRAGMENTS: &[&str] = &[
    "temp",
    "celsius",
    "kelvin",
    "watt",
    "power",
    "conductivity",
    "heat_capacity",
    "ambient",
    "hotspot",
];

/// Parameter-name suffixes that indicate a physical quantity with an
/// encoded unit (`..._c`, `..._k`, `..._w`).
const QUANTITY_SUFFIXES: &[&str] = &["_c", "_k", "_w"];

/// Known physical-constant magnitudes that must not appear as inline
/// literals outside the material tables (rule 3): the Celsius offset,
/// copper and silicon bulk conductivities, and the volumetric heat
/// capacities used by the stack materials.
const MAGIC_MAGNITUDES: &[f64] = &[273.15, 120.0, 400.0, 1.75e6, 3.4e6, 2.0e6, 3.0e6, 4.0e6];

/// Files exempt from rule 3: the canonical homes of physical constants.
const MAGIC_EXEMPT_SUFFIXES: &[&str] = &[
    "thermal/src/material.rs",
    "power/src/blocks.rs",
    "thermal/src/units.rs",
];

/// Files where panicking escape hatches are banned outright (rule 4):
/// the recovery paths themselves. A panic here turns a survivable fault
/// into a crash, defeating the point of the module.
const NO_PANIC_SUFFIXES: &[&str] = &[
    "crates/core/src/dtm.rs",
    "crates/core/src/sensor.rs",
    "crates/core/src/checkpoint.rs",
    "crates/thermal/src/solve.rs",
    "crates/thermal/src/model.rs",
    "crates/thermal/src/adaptive.rs",
];

/// Library modules instrumented with `xylem-obs` (rule 5): everything
/// that emits structured events or metrics. A stray `println!` here
/// writes around the sink — invisible to `--metrics-out` consumers and
/// free to interleave with (and corrupt) piped JSONL streams.
const INSTRUMENTED_SUFFIXES: &[&str] = &[
    "crates/core/src/dtm.rs",
    "crates/core/src/sensor.rs",
    "crates/core/src/checkpoint.rs",
    "crates/thermal/src/solve.rs",
    "crates/thermal/src/model.rs",
    "crates/thermal/src/adaptive.rs",
    "crates/bench/src/harness.rs",
];

/// Whole instrumented sub-trees (rule 5). The obs crate owns the sink;
/// it must never print around itself.
const INSTRUMENTED_PREFIXES: &[&str] = &["crates/obs/src/"];

/// Print-family macros banned by rule 5.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Whether `relpath` (normalized with `/`) is library source: under a
/// crate's `src/`, not a binary target, not the lint crate itself.
fn is_library_source(relpath: &str) -> bool {
    relpath.starts_with("crates/")
        && relpath.contains("/src/")
        && !relpath.contains("/bin/")
        && !relpath.starts_with("crates/lint/")
}

/// Marks every token inside a `#[cfg(test)]`-gated item so the rules can
/// skip test code. Returns a per-token mask (`true` = skip).
fn cfg_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_attr = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_attr {
            i += 1;
            continue;
        }
        // Skip from the attribute to the end of the item it gates: either
        // a `;` (e.g. a gated `use`) or the matching close of the first
        // top-level `{`.
        let start = i;
        let mut j = i + 7;
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                let mut braces = 1i32;
                j += 1;
                while j < toks.len() && braces > 0 {
                    if toks[j].is_punct('{') {
                        braces += 1;
                    } else if toks[j].is_punct('}') {
                        braces -= 1;
                    }
                    j += 1;
                }
                j -= 1;
                break;
            }
            j += 1;
        }
        let end = j.min(toks.len() - 1);
        for m in &mut mask[start..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Rule 1: raw `f64` parameters named like physical quantities in public
/// function signatures of the units-checked crates.
pub fn check_f64_params(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    allow: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    if !UNITS_CHECKED_PREFIXES
        .iter()
        .any(|p| relpath.starts_with(p))
        || relpath.contains("/bin/")
    {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        if mask[i] || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` are not public API.
        if j < toks.len() && toks[j].is_punct('(') {
            i += 1;
            continue;
        }
        // Skip fn qualifiers: `const`, `unsafe`, `async`, `extern "C"`.
        while j < toks.len()
            && (toks[j].is_ident("const")
                || toks[j].is_ident("unsafe")
                || toks[j].is_ident("async")
                || toks[j].is_ident("extern")
                || toks[j].kind == TokKind::Str)
        {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_ident("fn") {
            i += 1;
            continue;
        }
        j += 1;
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i = j;
            continue;
        }
        let fn_name = name_tok.text.clone();
        j += 1;
        // Skip generic parameters `<...>`, minding `->` arrows inside
        // closure-trait bounds.
        if j < toks.len() && toks[j].is_punct('<') {
            let mut angle = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j >= toks.len() || !toks[j].is_punct('(') {
            i = j;
            continue;
        }
        // Collect the parameter list up to the matching `)`.
        let open = j;
        let mut paren = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                paren += 1;
            } else if toks[j].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            j += 1;
        }
        let params = &toks[open + 1..j.min(toks.len())];
        for param in split_params(params) {
            check_one_param(relpath, &fn_name, param, allow, out);
        }
        i = j + 1;
    }
}

/// Splits a parameter token slice on top-level commas (tracking paren,
/// bracket, and angle depth; `->` arrows do not close angles).
fn split_params(params: &[Tok]) -> Vec<&[Tok]> {
    let mut groups = Vec::new();
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    let mut start = 0;
    for (k, t) in params.iter().enumerate() {
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(k > 0 && params[k - 1].is_punct('-')) {
            angle = (angle - 1).max(0);
        } else if t.is_punct(',') && paren == 0 && bracket == 0 && angle == 0 {
            groups.push(&params[start..k]);
            start = k + 1;
        }
    }
    if start < params.len() {
        groups.push(&params[start..]);
    }
    groups
}

fn check_one_param(
    relpath: &str,
    fn_name: &str,
    param: &[Tok],
    allow: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    if param.is_empty() || param.iter().any(|t| t.is_ident("self")) {
        return;
    }
    let Some(colon) = param.iter().position(|t| t.is_punct(':')) else {
        return;
    };
    let Some(name_tok) = param[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)
    else {
        return;
    };
    let ty = &param[colon + 1..];
    let is_bare_f64 = ty.len() == 1 && ty[0].is_ident("f64");
    if !is_bare_f64 {
        return;
    }
    let name = name_tok.text.to_ascii_lowercase();
    let is_quantity = QUANTITY_FRAGMENTS.iter().any(|f| name.contains(f))
        || QUANTITY_SUFFIXES.iter().any(|s| name.ends_with(s));
    if !is_quantity {
        return;
    }
    let symbol = format!("{fn_name}.{}", name_tok.text);
    if allow.permits("f64-param", relpath, &symbol) {
        return;
    }
    out.push(Diagnostic {
        rule: "f64-param",
        path: relpath.to_string(),
        line: name_tok.line,
        symbol,
        message: format!(
            "public fn `{fn_name}` takes physical quantity `{}` as raw f64; use a units newtype (Celsius, Kelvin, Watts, ...)",
            name_tok.text
        ),
    });
}

/// Rule 2: `.unwrap()` calls and message-free panic-family macros in
/// library code.
pub fn check_panics(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    allow: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    if !is_library_source(relpath) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        // `.unwrap()`
        if t.is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            if allow.permits("unwrap", relpath, "unwrap") {
                continue;
            }
            out.push(Diagnostic {
                rule: "unwrap",
                path: relpath.to_string(),
                line: t.line,
                symbol: "unwrap".to_string(),
                message: "`.unwrap()` in library code; propagate the error or use `expect(\"<invariant>\")`".to_string(),
            });
        }
        // `panic!()` / `unreachable!()` / `todo!()` / `unimplemented!()`
        // with no message.
        let is_panic_macro = ["panic", "unreachable", "todo", "unimplemented"]
            .iter()
            .any(|m| t.is_ident(m));
        if is_panic_macro
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if allow.permits("unwrap", relpath, &t.text) {
                continue;
            }
            out.push(Diagnostic {
                rule: "unwrap",
                path: relpath.to_string(),
                line: t.line,
                symbol: t.text.clone(),
                message: format!(
                    "message-free `{}!()` in library code; state the violated invariant",
                    t.text
                ),
            });
        }
    }
}

/// Rule 4: `.expect()` and `.unwrap()` in the fault-tolerance-critical
/// modules. Rule 2 already bans `.unwrap()` across library code but
/// tolerates `expect("<invariant>")`; in the recovery paths even a
/// documented invariant panic is unacceptable — the module exists to
/// absorb violated assumptions, not to die on them.
pub fn check_no_panic_paths(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    allow: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    if !NO_PANIC_SUFFIXES.iter().any(|s| relpath.ends_with(s)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let is_call = (t.is_ident("expect") || t.is_ident("unwrap"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_call {
            continue;
        }
        if allow.permits("no-panic-path", relpath, &t.text) {
            continue;
        }
        out.push(Diagnostic {
            rule: "no-panic-path",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "`.{}()` in a fault-tolerance-critical module; recovery paths must propagate every failure as a Result",
                t.text
            ),
        });
    }
}

/// Rule 5: print-family macros in the obs-instrumented library modules.
/// Structured output must go through the `xylem-obs` sink (an event or a
/// metric), never straight to stdout/stderr.
pub fn check_no_println(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    allow: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    let instrumented = INSTRUMENTED_SUFFIXES.iter().any(|s| relpath.ends_with(s))
        || INSTRUMENTED_PREFIXES.iter().any(|p| relpath.starts_with(p));
    if !instrumented {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let is_print = PRINT_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            // Not a method/field access like `writer.print!...` cannot
            // occur, but `.println` as an identifier path segment can:
            // require the macro position (no leading `.` or `::`).
            && !(i > 0 && toks[i - 1].is_punct('.'));
        if !is_print {
            continue;
        }
        if allow.permits("no-println", relpath, &t.text) {
            continue;
        }
        out.push(Diagnostic {
            rule: "no-println",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "`{}!` in an obs-instrumented module; emit a structured event or metric through the xylem-obs sink instead",
                t.text
            ),
        });
    }
}

/// Rule 3: float literals matching known physical-constant magnitudes
/// outside the material tables.
pub fn check_magic_floats(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    allow: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    if !is_library_source(relpath) || MAGIC_EXEMPT_SUFFIXES.iter().any(|s| relpath.ends_with(s)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Number {
            continue;
        }
        let Some(v) = parse_float_literal(&t.text) else {
            continue;
        };
        let Some(hit) = MAGIC_MAGNITUDES
            .iter()
            .find(|&&m| (v - m).abs() <= m.abs() * 1e-12)
        else {
            continue;
        };
        if allow.permits("magic-float", relpath, &t.text) {
            continue;
        }
        out.push(Diagnostic {
            rule: "magic-float",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "literal `{}` matches physical-constant magnitude {hit}; reference the named constant in material.rs/blocks.rs instead",
                t.text
            ),
        });
    }
}

/// Parses a *float* literal: requires a decimal point or exponent, so
/// integers (grid sizes, indices) never match. Returns `None` for
/// integers and non-decimal bases.
fn parse_float_literal(text: &str) -> Option<f64> {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return None;
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .strip_suffix("f64")
        .or_else(|| cleaned.strip_suffix("f32"))
        .unwrap_or(&cleaned);
    if !cleaned.contains('.') && !cleaned.contains('e') && !cleaned.contains('E') {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

/// Computes the cfg(test) mask for a token stream (exposed for `lib.rs`).
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    cfg_test_mask(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_all(relpath: &str, src: &str) -> Vec<Diagnostic> {
        let toks = lex(src).expect("fixture lexes");
        let mask = cfg_test_mask(&toks);
        let allow = Allowlist::default();
        let mut out = Vec::new();
        check_f64_params(relpath, &toks, &mask, &allow, &mut out);
        check_panics(relpath, &toks, &mask, &allow, &mut out);
        check_magic_floats(relpath, &toks, &mask, &allow, &mut out);
        check_no_panic_paths(relpath, &toks, &mask, &allow, &mut out);
        check_no_println(relpath, &toks, &mask, &allow, &mut out);
        out
    }

    #[test]
    fn flags_raw_f64_quantity_param() {
        let d = run_all(
            "crates/thermal/src/foo.rs",
            "pub fn set_ambient(ambient_c: f64) {}",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "f64-param");
        assert_eq!(d[0].line, 1);
        assert!(d[0].symbol.contains("ambient_c"));
    }

    #[test]
    fn typed_params_and_bulk_slices_pass() {
        let d = run_all(
            "crates/thermal/src/foo.rs",
            "pub fn set_ambient(ambient: Celsius) {}\n\
             pub fn temperatures(&self, temps_c: &[f64]) {}\n\
             pub fn scale(factor: f64) {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pub_crate_and_private_fns_pass() {
        let d = run_all(
            "crates/power/src/foo.rs",
            "pub(crate) fn t(temp_c: f64) {}\nfn u(watts_w: f64) {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn generic_fns_are_parsed_past_their_generics() {
        let d = run_all(
            "crates/core/src/foo.rs",
            "pub fn apply<F: Fn(f64) -> f64>(f: F, temp_c: f64) {}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].symbol.contains("temp_c"));
    }

    #[test]
    fn flags_unwrap_and_bare_panics() {
        let d = run_all(
            "crates/stack/src/foo.rs",
            "fn f() { x.unwrap(); panic!(); unreachable!(); }",
        );
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "unwrap"));
    }

    #[test]
    fn expect_and_panic_with_message_pass() {
        let d = run_all(
            "crates/stack/src/foo.rs",
            "fn f() { x.expect(\"invariant\"); panic!(\"bad: {y}\"); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let d = run_all(
            "crates/stack/src/foo.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let t = 273.15; }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_magic_floats_outside_material_tables() {
        let d = run_all(
            "crates/thermal/src/package.rs",
            "fn k() -> f64 { 400.0 }\nfn off() -> f64 { 273.15 }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "magic-float"));
    }

    #[test]
    fn material_tables_and_integers_are_exempt() {
        let d = run_all(
            "crates/thermal/src/material.rs",
            "pub const CU: f64 = 400.0;",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run_all("crates/thermal/src/grid.rs", "fn n() -> usize { 400 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn expect_is_banned_in_recovery_modules() {
        // `expect("msg")` passes rule 2 everywhere else...
        let src = "fn f() { x.expect(\"invariant\"); }";
        assert!(run_all("crates/stack/src/foo.rs", src).is_empty());
        // ...but not in the fault-tolerance-critical files.
        for path in [
            "crates/core/src/dtm.rs",
            "crates/core/src/sensor.rs",
            "crates/core/src/checkpoint.rs",
            "crates/thermal/src/solve.rs",
            "crates/thermal/src/model.rs",
            "crates/thermal/src/adaptive.rs",
        ] {
            let d = run_all(path, src);
            assert_eq!(d.len(), 1, "{path}: {d:?}");
            assert_eq!(d[0].rule, "no-panic-path");
            assert_eq!(d[0].symbol, "expect");
        }
    }

    #[test]
    fn unwrap_in_recovery_modules_trips_both_rules() {
        let d = run_all("crates/core/src/dtm.rs", "fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "unwrap"));
        assert!(d.iter().any(|d| d.rule == "no-panic-path"));
    }

    #[test]
    fn recovery_module_tests_may_still_expect() {
        let d = run_all(
            "crates/core/src/checkpoint.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { x.expect(\"msg\"); y.unwrap(); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn prints_are_banned_in_instrumented_modules() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y = {y}\"); dbg!(z); }";
        for path in [
            "crates/core/src/dtm.rs",
            "crates/thermal/src/solve.rs",
            "crates/obs/src/sink.rs",
            "crates/bench/src/harness.rs",
        ] {
            let d = run_all(path, src);
            assert_eq!(d.len(), 3, "{path}: {d:?}");
            assert!(d.iter().all(|d| d.rule == "no-println"), "{d:?}");
        }
        // Uninstrumented library code, CLI binaries, and tests keep
        // their prints.
        assert!(run_all("crates/stack/src/builder.rs", src).is_empty());
        assert!(run_all("crates/core/src/bin/xylem.rs", src).is_empty());
        let gated = "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { println!(\"t\"); }\n}";
        assert!(run_all("crates/core/src/dtm.rs", gated).is_empty());
    }

    #[test]
    fn tests_dirs_and_bins_are_out_of_scope() {
        let src = "pub fn f(temp_c: f64) { x.unwrap(); let t = 273.15; }";
        assert!(run_all("crates/thermal/tests/t.rs", src).is_empty());
        assert!(run_all("crates/core/src/bin/xylem.rs", src).is_empty());
        assert!(run_all("examples/quickstart.rs", src).is_empty());
    }
}
