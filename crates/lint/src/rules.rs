//! The nine lint rules, operating on the lexer's token stream (pass 2 of
//! the two-pass analyzer; pass 1 is [`crate::symbols`]).
//!
//! Token-stream rules (no symbol table needed):
//!
//! * `f64-param` — public API functions of the physics crates must not take
//!   a raw `f64` where the parameter name says it is a physical quantity.
//! * `unwrap` — library code must not contain `.unwrap()` or message-free
//!   `panic!()`-family macros.
//! * `magic-float` — float literals matching known physical-constant
//!   magnitudes must live in the material/blocks tables, not inline.
//! * `no-panic-path` — the fault-tolerance-critical modules (the DTM
//!   loop, the solver ladder, sensors, checkpointing) must not contain
//!   `.expect()` or `.unwrap()` at all: these are exactly the places
//!   that run when something else already went wrong, so every failure
//!   must propagate as a `Result`.
//! * `no-println` — the modules instrumented with `xylem-obs` (and the
//!   obs crate itself) must not write to stdout/stderr directly: ad-hoc
//!   prints bypass the structured sink, corrupt piped JSONL output, and
//!   dodge the overhead accounting. Emit an event or record a metric
//!   instead; CLI binaries and examples keep their prints.
//!
//! Dataflow-aware rules (consume the [`crate::symbols::FileSymbols`]
//! table):
//!
//! * `no-nondet-collections` — `HashMap`/`HashSet` anywhere in a
//!   hot-path module (import, type, construction, or iteration). Hash
//!   iteration order is unspecified; one stray iteration in a solver
//!   path silently breaks the bit-identical-across-thread-counts claim.
//!   Use `BTreeMap`/`BTreeSet` or indexed vectors.
//! * `no-raw-accumulation` — from-scratch `+=` folds into a
//!   float-literal-initialized accumulator, and f64 `.sum()` calls, in
//!   hot-path modules. Reductions must go through the deterministic
//!   pairwise helpers in `xylem_thermal::reduce` so the fold order never
//!   depends on chunking or thread count. Row-local stencil accumulators
//!   (seeded from an existing element, not a literal) stay legal.
//! * `no-unit-escape` — `.0` field projection on a binding of a
//!   `xylem_thermal::units` newtype outside `units.rs` and the material
//!   tables. The projection bypasses the dimensional layer the
//!   `f64-param` rule exists to protect; use `.get()`.
//! * `obs-coverage` — in the instrumented modules, a function containing
//!   a fallback/degradation branch (an `Err(..)` handler arm, a
//!   `*fallback*`/`*rollback*`/`*exhausted*`-family call) must also
//!   reference the `xylem-obs` sink, so failure paths can never go dark.

use crate::lexer::{Tok, TokKind};
use crate::symbols::{FileSymbols, UNIT_TYPES};
use crate::Diagnostic;

/// Crate sub-trees whose public API surface is units-checked (rule 1).
const UNITS_CHECKED_PREFIXES: &[&str] = &[
    "crates/thermal/src/",
    "crates/power/src/",
    "crates/core/src/",
];

/// Parameter-name fragments that indicate a physical quantity.
const QUANTITY_FRAGMENTS: &[&str] = &[
    "temp",
    "celsius",
    "kelvin",
    "watt",
    "power",
    "conductivity",
    "heat_capacity",
    "ambient",
    "hotspot",
];

/// Parameter-name suffixes that indicate a physical quantity with an
/// encoded unit (`..._c`, `..._k`, `..._w`).
const QUANTITY_SUFFIXES: &[&str] = &["_c", "_k", "_w"];

/// Known physical-constant magnitudes that must not appear as inline
/// literals outside the material tables (rule 3): the Celsius offset,
/// copper and silicon bulk conductivities, and the volumetric heat
/// capacities used by the stack materials.
const MAGIC_MAGNITUDES: &[f64] = &[273.15, 120.0, 400.0, 1.75e6, 3.4e6, 2.0e6, 3.0e6, 4.0e6];

/// Files exempt from rule 3: the canonical homes of physical constants.
const MAGIC_EXEMPT_SUFFIXES: &[&str] = &[
    "thermal/src/material.rs",
    "power/src/blocks.rs",
    "thermal/src/units.rs",
];

/// Files where panicking escape hatches are banned outright (rule 4):
/// the recovery paths themselves. A panic here turns a survivable fault
/// into a crash, defeating the point of the module.
const NO_PANIC_SUFFIXES: &[&str] = &[
    "crates/core/src/dtm.rs",
    "crates/core/src/sensor.rs",
    "crates/core/src/checkpoint.rs",
    "crates/thermal/src/solve.rs",
    "crates/thermal/src/model.rs",
    "crates/thermal/src/adaptive.rs",
    "crates/sweep/src/engine.rs",
    "crates/sweep/src/journal.rs",
    // The serve scheduler and its durability layer absorb panics,
    // deadline misses, and SIGKILL; an unwrap here is a crash vector
    // in the component whose whole contract is "crash-only, never
    // crash-prone". (chaos.rs is exempt: its injected panics are the
    // test signal, and lib.rs hosts the panic-silencing hook.)
    "crates/serve/src/scheduler.rs",
    "crates/serve/src/session.rs",
    "crates/serve/src/spool.rs",
    "crates/serve/src/pool.rs",
];

/// Print-family macros banned by rule 5.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// The canonical home of the deterministic reduction helpers, exempt
/// from `no-raw-accumulation`: the chunk-serial `+=` loops *inside* the
/// pairwise machinery are the deterministic pattern itself.
const REDUCE_HOME_SUFFIXES: &[&str] = &["crates/thermal/src/reduce.rs"];

/// Files exempt from `no-unit-escape`: the newtype definitions and the
/// constant tables that construct them wholesale.
const UNIT_ESCAPE_EXEMPT_SUFFIXES: &[&str] = &[
    "thermal/src/units.rs",
    "thermal/src/material.rs",
    "power/src/blocks.rs",
];

/// Name fragments that mark a call as part of a fallback/degradation
/// path (rule `obs-coverage`).
const DEGRADATION_FRAGMENTS: &[&str] = &[
    "fallback", "rollback", "degrad", "exhaust", "retry", "failsafe",
];

/// Integer-type names whose presence in a statement marks a `.sum()` as
/// an integer fold (out of scope for `no-raw-accumulation`).
const INT_TYPE_IDENTS: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Whether `relpath` (normalized with `/`) is library source: under a
/// crate's `src/`, not a binary target, not the lint crate itself.
fn is_library_source(relpath: &str) -> bool {
    relpath.starts_with("crates/")
        && relpath.contains("/src/")
        && !relpath.contains("/bin/")
        && !relpath.starts_with("crates/lint/")
}

/// Marks every token inside a `#[cfg(test)]`-gated item so the rules can
/// skip test code. Returns a per-token mask (`true` = skip).
fn cfg_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_attr = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_attr {
            i += 1;
            continue;
        }
        // Skip from the attribute to the end of the item it gates: either
        // a `;` (e.g. a gated `use`) or the matching close of the first
        // top-level `{`.
        let start = i;
        let mut j = i + 7;
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                let mut braces = 1i32;
                j += 1;
                while j < toks.len() && braces > 0 {
                    if toks[j].is_punct('{') {
                        braces += 1;
                    } else if toks[j].is_punct('}') {
                        braces -= 1;
                    }
                    j += 1;
                }
                j -= 1;
                break;
            }
            j += 1;
        }
        let end = j.min(toks.len() - 1);
        for m in &mut mask[start..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Rule 1: raw `f64` parameters named like physical quantities in public
/// function signatures of the units-checked crates.
pub fn check_f64_params(relpath: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if !UNITS_CHECKED_PREFIXES
        .iter()
        .any(|p| relpath.starts_with(p))
        || relpath.contains("/bin/")
    {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        if mask[i] || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` are not public API.
        if j < toks.len() && toks[j].is_punct('(') {
            i += 1;
            continue;
        }
        // Skip fn qualifiers: `const`, `unsafe`, `async`, `extern "C"`.
        while j < toks.len()
            && (toks[j].is_ident("const")
                || toks[j].is_ident("unsafe")
                || toks[j].is_ident("async")
                || toks[j].is_ident("extern")
                || toks[j].kind == TokKind::Str)
        {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_ident("fn") {
            i += 1;
            continue;
        }
        j += 1;
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i = j;
            continue;
        }
        let fn_name = name_tok.text.clone();
        j += 1;
        // Skip generic parameters `<...>`, minding `->` arrows inside
        // closure-trait bounds.
        if j < toks.len() && toks[j].is_punct('<') {
            let mut angle = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j >= toks.len() || !toks[j].is_punct('(') {
            i = j;
            continue;
        }
        // Collect the parameter list up to the matching `)`.
        let open = j;
        let mut paren = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                paren += 1;
            } else if toks[j].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            j += 1;
        }
        let params = &toks[open + 1..j.min(toks.len())];
        for param in split_params(params) {
            check_one_param(relpath, &fn_name, param, out);
        }
        i = j + 1;
    }
}

/// Splits a parameter token slice on top-level commas (tracking paren,
/// bracket, and angle depth; `->` arrows do not close angles).
fn split_params(params: &[Tok]) -> Vec<&[Tok]> {
    let mut groups = Vec::new();
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    let mut start = 0;
    for (k, t) in params.iter().enumerate() {
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(k > 0 && params[k - 1].is_punct('-')) {
            angle = (angle - 1).max(0);
        } else if t.is_punct(',') && paren == 0 && bracket == 0 && angle == 0 {
            groups.push(&params[start..k]);
            start = k + 1;
        }
    }
    if start < params.len() {
        groups.push(&params[start..]);
    }
    groups
}

fn check_one_param(relpath: &str, fn_name: &str, param: &[Tok], out: &mut Vec<Diagnostic>) {
    if param.is_empty() || param.iter().any(|t| t.is_ident("self")) {
        return;
    }
    let Some(colon) = param.iter().position(|t| t.is_punct(':')) else {
        return;
    };
    let Some(name_tok) = param[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)
    else {
        return;
    };
    let ty = &param[colon + 1..];
    let is_bare_f64 = ty.len() == 1 && ty[0].is_ident("f64");
    if !is_bare_f64 {
        return;
    }
    let name = name_tok.text.to_ascii_lowercase();
    let is_quantity = QUANTITY_FRAGMENTS.iter().any(|f| name.contains(f))
        || QUANTITY_SUFFIXES.iter().any(|s| name.ends_with(s));
    if !is_quantity {
        return;
    }
    let symbol = format!("{fn_name}.{}", name_tok.text);
    out.push(Diagnostic {
        rule: "f64-param",
        path: relpath.to_string(),
        line: name_tok.line,
        symbol,
        message: format!(
            "public fn `{fn_name}` takes physical quantity `{}` as raw f64; use a units newtype (Celsius, Kelvin, Watts, ...)",
            name_tok.text
        ),
    });
}

/// Rule 2: `.unwrap()` calls and message-free panic-family macros in
/// library code.
pub fn check_panics(relpath: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if !is_library_source(relpath) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        // `.unwrap()`
        if t.is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            out.push(Diagnostic {
                rule: "unwrap",
                path: relpath.to_string(),
                line: t.line,
                symbol: "unwrap".to_string(),
                message: "`.unwrap()` in library code; propagate the error or use `expect(\"<invariant>\")`".to_string(),
            });
        }
        // `panic!()` / `unreachable!()` / `todo!()` / `unimplemented!()`
        // with no message.
        let is_panic_macro = ["panic", "unreachable", "todo", "unimplemented"]
            .iter()
            .any(|m| t.is_ident(m));
        if is_panic_macro
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            out.push(Diagnostic {
                rule: "unwrap",
                path: relpath.to_string(),
                line: t.line,
                symbol: t.text.clone(),
                message: format!(
                    "message-free `{}!()` in library code; state the violated invariant",
                    t.text
                ),
            });
        }
    }
}

/// Rule 4: `.expect()` and `.unwrap()` in the fault-tolerance-critical
/// modules. Rule 2 already bans `.unwrap()` across library code but
/// tolerates `expect("<invariant>")`; in the recovery paths even a
/// documented invariant panic is unacceptable — the module exists to
/// absorb violated assumptions, not to die on them.
pub fn check_no_panic_paths(relpath: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if !NO_PANIC_SUFFIXES.iter().any(|s| relpath.ends_with(s)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let is_call = (t.is_ident("expect") || t.is_ident("unwrap"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_call {
            continue;
        }
        out.push(Diagnostic {
            rule: "no-panic-path",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "`.{}()` in a fault-tolerance-critical module; recovery paths must propagate every failure as a Result",
                t.text
            ),
        });
    }
}

/// Rule 5: print-family macros in the obs-instrumented library modules.
/// Structured output must go through the `xylem-obs` sink (an event or a
/// metric), never straight to stdout/stderr.
pub fn check_no_println(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    syms: &FileSymbols,
    out: &mut Vec<Diagnostic>,
) {
    if !syms.zone.instrumented {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let is_print = PRINT_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            // Not a method/field access like `writer.print!...` cannot
            // occur, but `.println` as an identifier path segment can:
            // require the macro position (no leading `.` or `::`).
            && !(i > 0 && toks[i - 1].is_punct('.'));
        if !is_print {
            continue;
        }
        out.push(Diagnostic {
            rule: "no-println",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "`{}!` in an obs-instrumented module; emit a structured event or metric through the xylem-obs sink instead",
                t.text
            ),
        });
    }
}

/// Rule 3: float literals matching known physical-constant magnitudes
/// outside the material tables.
pub fn check_magic_floats(relpath: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if !is_library_source(relpath) || MAGIC_EXEMPT_SUFFIXES.iter().any(|s| relpath.ends_with(s)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Number {
            continue;
        }
        let Some(v) = parse_float_literal(&t.text) else {
            continue;
        };
        let Some(hit) = MAGIC_MAGNITUDES
            .iter()
            .find(|&&m| (v - m).abs() <= m.abs() * 1e-12)
        else {
            continue;
        };
        out.push(Diagnostic {
            rule: "magic-float",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "literal `{}` matches physical-constant magnitude {hit}; reference the named constant in material.rs/blocks.rs instead",
                t.text
            ),
        });
    }
}

/// Rule 6: `HashMap`/`HashSet` anywhere in a hot-path module. Hash
/// iteration order is unspecified and seeded per-process; any use in a
/// solver/DTM/adaptive/response-cache path risks the bit-identical
/// determinism claim. Every mention counts — an import alone invites
/// construction.
pub fn check_nondet_collections(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    syms: &FileSymbols,
    out: &mut Vec<Diagnostic>,
) {
    if !syms.zone.hot_path {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if !(t.text == "HashMap" || t.text == "HashSet") {
            continue;
        }
        out.push(Diagnostic {
            rule: "no-nondet-collections",
            path: relpath.to_string(),
            line: t.line,
            symbol: t.text.clone(),
            message: format!(
                "`{}` in a hot-path module: hash iteration order is nondeterministic; use BTreeMap/BTreeSet or indexed vectors",
                t.text
            ),
        });
    }
}

/// Rule 7: raw accumulation folds in hot-path modules. Two shapes:
///
/// * `acc += ...` where `acc` is a `let mut acc = 0.0;`-style
///   float-literal-initialized local (the symbol table's
///   `float_accums`), and
/// * `.sum()` / `.sum::<f64>()` over a float iterator.
///
/// Both must go through the deterministic pairwise helpers in
/// `xylem_thermal::reduce` (whose own chunk-serial loops are the one
/// exempt home). Row-local stencil accumulators seeded from an existing
/// element (`let mut acc = r[i];`) are deliberately out of scope: their
/// fold order is fixed by the row, not by chunking.
pub fn check_raw_accumulation(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    syms: &FileSymbols,
    out: &mut Vec<Diagnostic>,
) {
    if !syms.zone.hot_path || REDUCE_HOME_SUFFIXES.iter().any(|s| relpath.ends_with(s)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        // `acc += ...` on a tracked float accumulator.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('+'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            if let Some(f) = syms.enclosing_fn(i) {
                if f.float_accums.contains(&t.text) {
                    out.push(Diagnostic {
                        rule: "no-raw-accumulation",
                        path: relpath.to_string(),
                        line: t.line,
                        symbol: format!("{}.{}", f.name, t.text),
                        message: format!(
                            "raw `+=` fold into float accumulator `{}` in hot-path fn `{}`; use the deterministic pairwise helpers in xylem_thermal::reduce",
                            t.text, f.name
                        ),
                    });
                }
            }
            continue;
        }
        // `.sum()` / `.sum::<f64>()` over floats.
        if t.text == "sum" && i > 0 && toks[i - 1].is_punct('.') {
            let fn_name = syms
                .enclosing_fn(i)
                .map_or_else(|| "<top>".to_string(), |f| f.name.clone());
            // Turbofish type, if spelled, decides outright.
            let turbofish = (toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('<')))
            .then(|| toks.get(i + 4))
            .flatten();
            let flagged = match turbofish {
                Some(ty) => ty.is_ident("f64") || ty.is_ident("f32"),
                None => {
                    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                        false
                    } else {
                        // Back-scan the statement: an integer type name
                        // marks an integer fold, out of scope.
                        let stmt_start = toks[..i]
                            .iter()
                            .rposition(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                            .map_or(0, |p| p + 1);
                        !toks[stmt_start..i]
                            .iter()
                            .any(|t| INT_TYPE_IDENTS.iter().any(|n| t.is_ident(n)))
                    }
                }
            };
            if flagged {
                out.push(Diagnostic {
                    rule: "no-raw-accumulation",
                    path: relpath.to_string(),
                    line: t.line,
                    symbol: format!("{fn_name}.sum"),
                    message: format!(
                        "float `.sum()` fold in hot-path fn `{fn_name}`; use xylem_thermal::reduce::pairwise_sum (or pairwise_dot) so the fold order is fixed"
                    ),
                });
            }
        }
    }
}

/// Rule 8: `.0` field projection on unit-newtype bindings outside the
/// dimensional layer. `units.rs` owns the representation; everywhere
/// else must go through `.get()` so the `f64-param` rule cannot be
/// laundered away one tuple-index at a time.
pub fn check_unit_escape(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    syms: &FileSymbols,
    out: &mut Vec<Diagnostic>,
) {
    if !is_library_source(relpath)
        || UNIT_ESCAPE_EXEMPT_SUFFIXES
            .iter()
            .any(|s| relpath.ends_with(s))
    {
        return;
    }
    for i in 2..toks.len() {
        if mask[i] {
            continue;
        }
        let is_proj =
            toks[i].kind == TokKind::Number && toks[i].text == "0" && toks[i - 1].is_punct('.');
        if !is_proj {
            continue;
        }
        let prev = &toks[i - 2];
        // `binding.0` where the binding is unit-typed per pass 1.
        if prev.kind == TokKind::Ident {
            let Some(f) = syms.enclosing_fn(i - 2) else {
                continue;
            };
            if f.unit_bindings.contains(&prev.text) {
                out.push(Diagnostic {
                    rule: "no-unit-escape",
                    path: relpath.to_string(),
                    line: toks[i].line,
                    symbol: format!("{}.{}", f.name, prev.text),
                    message: format!(
                        "`.0` projection on unit-typed binding `{}` in fn `{}` bypasses the dimensional layer; use `.get()`",
                        prev.text, f.name
                    ),
                });
            }
        }
        // `UnitType::new(...).0` — direct constructor escape. The unit
        // type named in the same statement is the tell.
        if prev.is_punct(')') {
            let stmt_start = toks[..i - 2]
                .iter()
                .rposition(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                .map_or(0, |p| p + 1);
            if let Some(ty) = toks[stmt_start..i]
                .iter()
                .find(|t| UNIT_TYPES.iter().any(|u| t.is_ident(u)))
            {
                out.push(Diagnostic {
                    rule: "no-unit-escape",
                    path: relpath.to_string(),
                    line: toks[i].line,
                    symbol: format!("{}.0", ty.text),
                    message: format!(
                        "`.0` projection on a `{}` expression bypasses the dimensional layer; use `.get()`",
                        ty.text
                    ),
                });
            }
        }
    }
}

/// Rule 9: functions in the instrumented modules that contain a
/// fallback/degradation branch but never touch the `xylem-obs` sink.
/// Failure paths are exactly the ones operators need to see; a silent
/// degradation is indistinguishable from a healthy run in the JSONL
/// stream.
pub fn check_obs_coverage(
    relpath: &str,
    toks: &[Tok],
    mask: &[bool],
    syms: &FileSymbols,
    out: &mut Vec<Diagnostic>,
) {
    // Scoped to the instrumented *consumer* files, not the obs crate
    // itself (the sink's internals are its own failure domain).
    if !syms.zone.instrumented || relpath.starts_with("crates/obs/") {
        return;
    }
    for f in &syms.fns {
        if f.body.is_empty() {
            continue;
        }
        let start = f.sig.start.min(toks.len());
        if mask.get(start).copied().unwrap_or(true) {
            continue; // cfg(test)-gated fn
        }
        let body = &toks[f.body.start.min(toks.len())..f.body.end.min(toks.len())];
        if body.iter().any(|t| t.is_ident("xylem_obs")) {
            continue;
        }
        if let Some(marker) = find_degradation_marker(body) {
            out.push(Diagnostic {
                rule: "obs-coverage",
                path: relpath.to_string(),
                line: f.line,
                symbol: f.name.clone(),
                message: format!(
                    "fn `{}` has a degradation branch (`{marker}`) but never references xylem-obs; emit an event or bump a counter so the failure path is visible",
                    f.name
                ),
            });
        }
    }
}

/// Finds the first fallback/degradation marker in a function body:
/// a call whose name contains a [`DEGRADATION_FRAGMENTS`] fragment, an
/// `if let Err` / `while let Err` recovery, or a non-propagating
/// `Err(..) => ...` match arm.
fn find_degradation_marker(body: &[Tok]) -> Option<String> {
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Call-shaped degradation name (not a `fn` definition).
        let lower = t.text.to_ascii_lowercase();
        if DEGRADATION_FRAGMENTS.iter().any(|m| lower.contains(m))
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && body[i - 1].is_ident("fn"))
        {
            return Some(format!("{}(", t.text));
        }
        // `if let Err` / `while let Err` — unless the consequent block
        // just propagates (`{ return ... }` / `{ Err(...) }`).
        if t.is_ident("let")
            && i > 0
            && (body[i - 1].is_ident("if") || body[i - 1].is_ident("while"))
            && body.get(i + 1).is_some_and(|n| n.is_ident("Err"))
        {
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < body.len() {
                if body[j].is_punct('(') {
                    depth += 1;
                } else if body[j].is_punct(')') {
                    depth -= 1;
                } else if depth == 0 && body[j].is_punct('{') {
                    break;
                }
                j += 1;
            }
            let propagates = body
                .get(j + 1)
                .is_some_and(|n| n.is_ident("return") || n.is_ident("Err"));
            if !propagates {
                return Some("if let Err".to_string());
            }
        }
        // `Err(..) => <handler>` match arm, unless the handler just
        // propagates (`Err(...)` / `return ...`).
        if t.is_ident("Err") && body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < body.len() {
                if body[j].is_punct('(') {
                    depth += 1;
                } else if body[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let is_arm = body.get(j + 1).is_some_and(|n| n.is_punct('='))
                && body.get(j + 2).is_some_and(|n| n.is_punct('>'));
            if is_arm {
                let mut k = j + 3;
                if body.get(k).is_some_and(|n| n.is_punct('{')) {
                    k += 1;
                }
                let propagates = body
                    .get(k)
                    .is_some_and(|n| n.is_ident("Err") || n.is_ident("return"));
                if !propagates {
                    return Some("Err(..) =>".to_string());
                }
            }
        }
    }
    None
}

/// Parses a *float* literal: requires a decimal point or exponent, so
/// integers (grid sizes, indices) never match. Returns `None` for
/// integers and non-decimal bases.
fn parse_float_literal(text: &str) -> Option<f64> {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return None;
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .strip_suffix("f64")
        .or_else(|| cleaned.strip_suffix("f32"))
        .unwrap_or(&cleaned);
    if !cleaned.contains('.') && !cleaned.contains('e') && !cleaned.contains('E') {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

/// Computes the cfg(test) mask for a token stream (exposed for `lib.rs`).
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    cfg_test_mask(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(relpath: &str, src: &str) -> Vec<Diagnostic> {
        crate::analyze_source(relpath, src)
    }

    #[test]
    fn flags_raw_f64_quantity_param() {
        let d = run_all(
            "crates/thermal/src/foo.rs",
            "pub fn set_ambient(ambient_c: f64) {}",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "f64-param");
        assert_eq!(d[0].line, 1);
        assert!(d[0].symbol.contains("ambient_c"));
    }

    #[test]
    fn typed_params_and_bulk_slices_pass() {
        let d = run_all(
            "crates/thermal/src/foo.rs",
            "pub fn set_ambient(ambient: Celsius) {}\n\
             pub fn temperatures(&self, temps_c: &[f64]) {}\n\
             pub fn scale(factor: f64) {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pub_crate_and_private_fns_pass() {
        let d = run_all(
            "crates/power/src/foo.rs",
            "pub(crate) fn t(temp_c: f64) {}\nfn u(watts_w: f64) {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn generic_fns_are_parsed_past_their_generics() {
        let d = run_all(
            "crates/core/src/foo.rs",
            "pub fn apply<F: Fn(f64) -> f64>(f: F, temp_c: f64) {}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].symbol.contains("temp_c"));
    }

    #[test]
    fn flags_unwrap_and_bare_panics() {
        let d = run_all(
            "crates/stack/src/foo.rs",
            "fn f() { x.unwrap(); panic!(); unreachable!(); }",
        );
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "unwrap"));
    }

    #[test]
    fn expect_and_panic_with_message_pass() {
        let d = run_all(
            "crates/stack/src/foo.rs",
            "fn f() { x.expect(\"invariant\"); panic!(\"bad: {y}\"); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let d = run_all(
            "crates/stack/src/foo.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let t = 273.15; }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_magic_floats_outside_material_tables() {
        let d = run_all(
            "crates/thermal/src/package.rs",
            "fn k() -> f64 { 400.0 }\nfn off() -> f64 { 273.15 }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "magic-float"));
    }

    #[test]
    fn material_tables_and_integers_are_exempt() {
        let d = run_all(
            "crates/thermal/src/material.rs",
            "pub const CU: f64 = 400.0;",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run_all("crates/thermal/src/grid.rs", "fn n() -> usize { 400 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn expect_is_banned_in_recovery_modules() {
        // `expect("msg")` passes rule 2 everywhere else...
        let src = "fn f() { x.expect(\"invariant\"); }";
        assert!(run_all("crates/stack/src/foo.rs", src).is_empty());
        // ...but not in the fault-tolerance-critical files.
        for path in [
            "crates/core/src/dtm.rs",
            "crates/core/src/sensor.rs",
            "crates/core/src/checkpoint.rs",
            "crates/thermal/src/solve.rs",
            "crates/thermal/src/model.rs",
            "crates/thermal/src/adaptive.rs",
            "crates/sweep/src/engine.rs",
            "crates/sweep/src/journal.rs",
        ] {
            let d = run_all(path, src);
            assert_eq!(d.len(), 1, "{path}: {d:?}");
            assert_eq!(d[0].rule, "no-panic-path");
            assert_eq!(d[0].symbol, "expect");
        }
    }

    #[test]
    fn unwrap_in_recovery_modules_trips_both_rules() {
        let d = run_all("crates/core/src/dtm.rs", "fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "unwrap"));
        assert!(d.iter().any(|d| d.rule == "no-panic-path"));
    }

    #[test]
    fn recovery_module_tests_may_still_expect() {
        let d = run_all(
            "crates/core/src/checkpoint.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { x.expect(\"msg\"); y.unwrap(); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn prints_are_banned_in_instrumented_modules() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y = {y}\"); dbg!(z); }";
        for path in [
            "crates/core/src/dtm.rs",
            "crates/thermal/src/solve.rs",
            "crates/obs/src/sink.rs",
            "crates/bench/src/harness.rs",
        ] {
            let d = run_all(path, src);
            assert_eq!(d.len(), 3, "{path}: {d:?}");
            assert!(d.iter().all(|d| d.rule == "no-println"), "{d:?}");
        }
        // Uninstrumented library code, CLI binaries, and tests keep
        // their prints.
        assert!(run_all("crates/stack/src/builder.rs", src).is_empty());
        assert!(run_all("crates/core/src/bin/xylem.rs", src).is_empty());
        let gated = "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { println!(\"t\"); }\n}";
        assert!(run_all("crates/core/src/dtm.rs", gated).is_empty());
    }

    #[test]
    fn tests_dirs_and_bins_are_out_of_scope() {
        let src = "pub fn f(temp_c: f64) { x.unwrap(); let t = 273.15; }";
        assert!(run_all("crates/thermal/tests/t.rs", src).is_empty());
        assert!(run_all("crates/core/src/bin/xylem.rs", src).is_empty());
        assert!(run_all("examples/quickstart.rs", src).is_empty());
    }

    // ---- dataflow-aware rules -------------------------------------

    #[test]
    fn hashmap_banned_in_hot_path_modules() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); for (k, v) in &m {} }";
        let d = run_all("crates/thermal/src/solve.rs", src);
        assert!(d.len() >= 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "no-nondet-collections"));
        // Free-zone files may use hash collections.
        assert!(run_all("crates/workloads/src/trace.rs", src).is_empty());
    }

    #[test]
    fn btree_and_vectors_pass_in_hot_path() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, f64> = BTreeMap::new(); }";
        assert!(run_all("crates/thermal/src/solve.rs", src).is_empty());
    }

    #[test]
    fn raw_accumulation_flagged_in_hot_path() {
        let src = "fn total(xs: &[f64]) -> f64 {\n let mut acc = 0.0;\n for x in xs { acc += x; }\n acc\n}";
        let d = run_all("crates/thermal/src/adaptive.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no-raw-accumulation");
        assert_eq!(d[0].symbol, "total.acc");
        assert_eq!(d[0].line, 3);
        // The same fold is fine outside the hot path...
        assert!(run_all("crates/stack/src/area.rs", src).is_empty());
        // ...and inside the reduction helpers' home.
        assert!(run_all("crates/thermal/src/reduce.rs", src).is_empty());
    }

    #[test]
    fn row_seeded_accumulators_pass() {
        // `let mut acc = r[i];` is a stencil accumulator, not a
        // from-scratch fold: its order is fixed by the row.
        let src =
            "fn row(r: &[f64], v: &[f64]) -> f64 {\n let mut acc = r[0];\n for x in v { acc += x; }\n acc\n}";
        assert!(run_all("crates/thermal/src/csr.rs", src).is_empty());
    }

    #[test]
    fn float_sum_flagged_integer_sum_passes() {
        let hot = "crates/core/src/response.rs";
        let d = run_all(hot, "fn f(xs: &[f64]) -> f64 { xs.iter().sum() }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no-raw-accumulation");
        assert_eq!(d[0].symbol, "f.sum");
        let d = run_all(hot, "fn g(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        assert_eq!(d.len(), 1, "{d:?}");
        // Integer folds are out of scope (order-independent).
        let src = "fn n(rows: &[Vec<u32>]) -> usize { let c: usize = rows.iter().map(|r| r.len()).sum(); c }";
        assert!(run_all(hot, src).is_empty());
        let src = "fn n(rows: &[u64]) -> u64 { rows.iter().sum::<u64>() }";
        assert!(run_all(hot, src).is_empty());
    }

    #[test]
    fn unit_escape_flagged_via_binding_dataflow() {
        let src = "fn f(limit: Celsius) -> f64 {\n let t = Kelvin::new(1.0);\n limit.0 + t.0\n}";
        let d = run_all("crates/thermal/src/grid.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "no-unit-escape"));
        assert_eq!(d[0].symbol, "f.limit");
        assert_eq!(d[1].symbol, "f.t");
        // `.get()` is the sanctioned accessor.
        let ok = "fn f(limit: Celsius) -> f64 { limit.get() }";
        assert!(run_all("crates/thermal/src/grid.rs", ok).is_empty());
        // units.rs owns the representation.
        assert!(run_all("crates/thermal/src/units.rs", src).is_empty());
    }

    #[test]
    fn unit_escape_on_constructor_expression() {
        let src = "fn f() -> f64 { Watts::new(1.5).0 }";
        let d = run_all("crates/core/src/system.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].symbol, "Watts.0");
    }

    #[test]
    fn tuple_projections_on_plain_tuples_pass() {
        let src = "fn f(pair: (usize, f64)) -> f64 { pair.1 + (pair.0 as f64) }";
        assert!(run_all("crates/thermal/src/grid.rs", src).is_empty());
        let src = "fn f() { let best = (1usize, 2.0); let _ = best.0; }";
        assert!(run_all("crates/core/src/evaluation.rs", src).is_empty());
    }

    #[test]
    fn obs_coverage_flags_dark_degradation_paths() {
        // A fallback branch with no obs reference anywhere in the fn.
        let dark = "fn recover(x: Result<u32, E>) -> u32 {\n match x { Ok(v) => v, Err(_) => { apply_fallback() } }\n}";
        let d = run_all("crates/core/src/dtm.rs", dark);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "obs-coverage");
        assert_eq!(d[0].symbol, "recover");
        // Same branch plus an obs counter: covered.
        let lit = "fn recover(x: Result<u32, E>) -> u32 {\n match x { Ok(v) => v, Err(_) => { xylem_obs::incr(xylem_obs::Counter::FailsafeEvents); apply_fallback() } }\n}";
        assert!(run_all("crates/core/src/dtm.rs", lit).is_empty());
        // Pure propagation is not a degradation branch.
        let prop = "fn load(x: Result<u32, E>) -> Result<u32, E> {\n match x { Ok(v) => Ok(v), Err(e) => Err(e) }\n}";
        assert!(run_all("crates/core/src/dtm.rs", prop).is_empty());
        // Uninstrumented modules are out of scope.
        assert!(run_all("crates/stack/src/builder.rs", dark).is_empty());
        // The obs crate itself is its own failure domain.
        assert!(run_all("crates/obs/src/sink.rs", dark).is_empty());
    }

    #[test]
    fn obs_coverage_ignores_marker_fn_definitions() {
        // Defining `budget_exhausted()` is not the same as degrading.
        let src = "fn budget_exhausted(&self) -> bool { self.used > self.cap }";
        assert!(run_all("crates/thermal/src/adaptive.rs", src).is_empty());
        // Calling it from a live branch is.
        let call = "fn step(&mut self) { if ctrl.budget_exhausted() { self.hold(); } }";
        let d = run_all("crates/thermal/src/adaptive.rs", call);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "obs-coverage");
    }
}
