//! `xylem-lint`: a two-pass workspace static-analysis pass for the Xylem
//! crates.
//!
//! Pass 1 ([`symbols`]) builds a lightweight per-file symbol table over
//! the token stream: `use` imports, function spans, unit-newtype
//! bindings, float-accumulator locals, and the file's determinism-zone
//! classification (*hot-path* / *instrumented* / *free*). Pass 2
//! ([`rules`]) runs nine rules, five token-local and four
//! dataflow-aware:
//!
//! 1. **`f64-param`** — public API functions of `xylem-thermal`,
//!    `xylem-power`, and `xylem-core` must not take a raw `f64` where the
//!    parameter name indicates a physical quantity; use the newtypes in
//!    `xylem_thermal::units` instead. Bulk `&[f64]` kernel interfaces are
//!    deliberately out of scope.
//! 2. **`unwrap`** — library code (crate `src/` trees, excluding binary
//!    targets and `#[cfg(test)]` items) must not contain `.unwrap()` or
//!    message-free `panic!()`-family macros.
//! 3. **`magic-float`** — float literals matching known physical-constant
//!    magnitudes (the Celsius offset, material conductivities and heat
//!    capacities) must live in `thermal/src/material.rs` or
//!    `power/src/blocks.rs`, not inline.
//! 4. **`no-panic-path`** — the fault-tolerance-critical modules (the DTM
//!    loop, the solver fallback ladder, the sensor model, checkpointing)
//!    must not contain `.unwrap()` or `.expect()` at all: the recovery
//!    paths must propagate every failure as a `Result`.
//! 5. **`no-println`** — modules instrumented with `xylem-obs` must not
//!    use print-family macros; structured output goes through the
//!    observability sink so `--metrics-out` JSONL streams stay parseable.
//! 6. **`no-nondet-collections`** — `HashMap`/`HashSet` banned in
//!    hot-path modules (hash iteration order breaks the bit-identical
//!    determinism claim); use `BTreeMap`/`BTreeSet` or indexed vectors.
//! 7. **`no-raw-accumulation`** — from-scratch `+=` float folds and f64
//!    `.sum()` calls in hot-path modules must go through the
//!    deterministic pairwise helpers in `xylem_thermal::reduce`.
//! 8. **`no-unit-escape`** — `.0` projection on unit-newtype values
//!    outside `units.rs` and the material tables; use `.get()`.
//! 9. **`obs-coverage`** — instrumented-module functions with a
//!    fallback/degradation branch must reference the `xylem-obs` sink.
//!
//! Two workspace-root files tune the verdict, sharing one format (one
//! `<rule> <path-suffix> <symbol>` entry per line, `#` comments, symbol
//! `*` wildcards):
//!
//! * `xylem-lint.allow` — deliberate, permanent exemptions.
//! * `xylem-lint.baseline` — the ratchet: findings that predate a rule,
//!   pinned so they do not fail CI while any **new** finding does.
//!
//! Entries in either file that match zero findings are *stale* and fail
//! the run themselves (escape hatch: `--allow-stale` during bring-up),
//! so the ratchet can only ever tighten.
//!
//! Run with `cargo run -p xylem-lint` from the workspace root; the binary
//! prints `path:line: [rule] message` per finding (or JSONL with
//! `--json`) and exits non-zero if any finding or stale entry survives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod rules;
pub mod symbols;

use std::fmt;
use std::path::{Path, PathBuf};

use xylem_obs::json::Value;

/// File name of the permanent-exemption list at the workspace root.
pub const ALLOW_FILE: &str = "xylem-lint.allow";

/// File name of the pinned-findings ratchet at the workspace root.
pub const BASELINE_FILE: &str = "xylem-lint.baseline";

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (`f64-param`, `unwrap`, ..., or `lex`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// The offending symbol (`fn.param`, macro name, or literal text) —
    /// what an allowlist/baseline entry must name.
    pub symbol: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The finding as a JSON object for the `--json` JSONL mode. The
    /// schema is locked by a snapshot test: keys `rule`, `path`, `line`,
    /// `symbol`, `zone`, `message`, in that order.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("rule".into(), Value::Str(self.rule.to_string())),
            ("path".into(), Value::Str(self.path.clone())),
            ("line".into(), Value::U64(u64::from(self.line))),
            ("symbol".into(), Value::Str(self.symbol.clone())),
            (
                "zone".into(),
                Value::Str(symbols::Zone::of(&self.path).label().to_string()),
            ),
            ("message".into(), Value::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One parsed entry of `xylem-lint.allow` / `xylem-lint.baseline`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry exempts.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub path_suffix: String,
    /// Exact symbol, or `*` for any.
    pub symbol: String,
    /// 1-indexed line in the source file (for stale reporting).
    pub line: usize,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.rule, self.path_suffix, self.symbol)
    }
}

/// Parsed `xylem-lint.allow` / `xylem-lint.baseline` entries.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text: one `<rule> <path-suffix> <symbol>` entry
    /// per line, `#` comments, blank lines ignored. Malformed lines are
    /// reported as errors rather than silently dropped.
    ///
    /// # Errors
    ///
    /// Returns the 1-indexed line numbers of malformed entries.
    pub fn parse(text: &str) -> Result<Self, Vec<usize>> {
        let mut entries = Vec::new();
        let mut bad = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path_suffix), Some(symbol), None) => {
                    entries.push(AllowEntry {
                        rule: rule.to_string(),
                        path_suffix: path_suffix.to_string(),
                        symbol: symbol.to_string(),
                        line: idx + 1,
                    });
                }
                _ => bad.push(idx + 1),
            }
        }
        if bad.is_empty() {
            Ok(Self { entries })
        } else {
            Err(bad)
        }
    }

    /// Whether a finding of `rule` at `path` on `symbol` is allowlisted.
    #[must_use]
    pub fn permits(&self, rule: &str, path: &str, symbol: &str) -> bool {
        self.matching_entry(rule, path, symbol).is_some()
    }

    /// Index of the first entry matching a finding, if any.
    fn matching_entry(&self, rule: &str, path: &str, symbol: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == rule
                && path.ends_with(&e.path_suffix)
                && (e.symbol == "*" || e.symbol == symbol)
        })
    }

    /// The parsed entries, in file order.
    #[must_use]
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

/// An allowlist/baseline entry that matched zero findings: the finding
/// it exempted has been fixed (or renamed), so the entry must go — a
/// stale entry is a hole the ratchet would silently leak through.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// Which file the entry lives in ([`ALLOW_FILE`] or
    /// [`BASELINE_FILE`]).
    pub file: &'static str,
    /// 1-indexed line of the entry.
    pub line: usize,
    /// The entry text, `<rule> <path-suffix> <symbol>`.
    pub entry: String,
}

impl StaleEntry {
    /// The stale entry rendered as a pseudo-finding (rule `stale-allow`
    /// or `stale-baseline`) so text and JSONL output stay uniform.
    #[must_use]
    pub fn to_diagnostic(&self) -> Diagnostic {
        let rule = if self.file == BASELINE_FILE {
            "stale-baseline"
        } else {
            "stale-allow"
        };
        Diagnostic {
            rule,
            path: self.file.to_string(),
            line: u32::try_from(self.line).unwrap_or(u32::MAX),
            symbol: self.entry.clone(),
            message: format!(
                "entry `{}` matches zero findings; delete it (the exempted finding is gone)",
                self.entry
            ),
        }
    }
}

/// Outcome of a full workspace audit.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceReport {
    /// Findings that survived the allowlist and baseline.
    pub findings: Vec<Diagnostic>,
    /// Count of findings suppressed by the allowlist or baseline.
    pub suppressed: usize,
    /// Allowlist/baseline entries that matched nothing.
    pub stale: Vec<StaleEntry>,
}

impl WorkspaceReport {
    /// Whether the audit passes: no surviving findings, and (unless
    /// `allow_stale`) no stale entries.
    #[must_use]
    pub fn is_clean(&self, allow_stale: bool) -> bool {
        self.findings.is_empty() && (allow_stale || self.stale.is_empty())
    }
}

/// Runs both analyzer passes over one source file and returns the *raw*
/// findings (no allowlist/baseline filtering). Pure: no filesystem
/// access, so fixtures can be checked in-memory. Total: lex errors come
/// back as a `lex` diagnostic, never a panic.
#[must_use]
pub fn analyze_source(relpath: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = match lexer::lex(src) {
        Ok(toks) => toks,
        Err(e) => {
            out.push(Diagnostic {
                rule: "lex",
                path: relpath.to_string(),
                line: e.line,
                symbol: "lex-error".to_string(),
                message: e.msg,
            });
            return out;
        }
    };
    let mask = rules::test_mask(&toks);
    let syms = symbols::FileSymbols::build(relpath, &toks);
    rules::check_f64_params(relpath, &toks, &mask, &mut out);
    rules::check_panics(relpath, &toks, &mask, &mut out);
    rules::check_magic_floats(relpath, &toks, &mask, &mut out);
    rules::check_no_panic_paths(relpath, &toks, &mask, &mut out);
    rules::check_no_println(relpath, &toks, &mask, &syms, &mut out);
    rules::check_nondet_collections(relpath, &toks, &mask, &syms, &mut out);
    rules::check_raw_accumulation(relpath, &toks, &mask, &syms, &mut out);
    rules::check_unit_escape(relpath, &toks, &mask, &syms, &mut out);
    rules::check_obs_coverage(relpath, &toks, &mask, &syms, &mut out);
    out
}

/// Runs every rule over one source file and filters through `allow`.
#[must_use]
pub fn check_source(relpath: &str, src: &str, allow: &Allowlist) -> Vec<Diagnostic> {
    analyze_source(relpath, src)
        .into_iter()
        .filter(|d| !allow.permits(d.rule, &d.path, &d.symbol))
        .collect()
}

/// Collects every `.rs` file under `root`, skipping `target/`, `vendor/`,
/// and dot-directories. Paths are returned workspace-relative and sorted.
///
/// # Errors
///
/// Returns an I/O error description if a directory cannot be read.
pub fn collect_rust_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("path {} not under root: {e}", path.display()))?;
                files.push(rel.to_path_buf());
            }
        }
    }
    files.sort();
    Ok(files)
}

fn load_entry_file(root: &Path, name: &str) -> Result<Allowlist, String> {
    let path = root.join(name);
    match std::fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text).map_err(|lines| {
            format!(
                "{}: malformed entries on lines {:?} (expected `<rule> <path-suffix> <symbol>`)",
                path.display(),
                lines
            )
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Loads the optional `xylem-lint.allow` at `root`.
///
/// # Errors
///
/// Returns a description of malformed allowlist lines.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    load_entry_file(root, ALLOW_FILE)
}

/// Loads the optional `xylem-lint.baseline` at `root`.
///
/// # Errors
///
/// Returns a description of malformed baseline lines.
pub fn load_baseline(root: &Path) -> Result<Allowlist, String> {
    load_entry_file(root, BASELINE_FILE)
}

/// Audits every `.rs` file under `root`: raw findings are filtered
/// through the allowlist first, then the baseline; entries of either
/// file that matched nothing are reported as stale.
///
/// # Errors
///
/// Returns a description of filesystem or entry-file-format problems.
pub fn audit_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let allow = load_allowlist(root)?;
    let baseline = load_baseline(root)?;
    let mut report = WorkspaceReport::default();
    let mut allow_used = vec![false; allow.entries.len()];
    let mut baseline_used = vec![false; baseline.entries.len()];
    for rel in collect_rust_files(root)? {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let relpath = rel.to_string_lossy().replace('\\', "/");
        for d in analyze_source(&relpath, &src) {
            if let Some(i) = allow.matching_entry(d.rule, &d.path, &d.symbol) {
                allow_used[i] = true;
                report.suppressed += 1;
            } else if let Some(i) = baseline.matching_entry(d.rule, &d.path, &d.symbol) {
                baseline_used[i] = true;
                report.suppressed += 1;
            } else {
                report.findings.push(d);
            }
        }
    }
    for (list, used, file) in [
        (&allow, &allow_used, ALLOW_FILE),
        (&baseline, &baseline_used, BASELINE_FILE),
    ] {
        for (e, used) in list.entries.iter().zip(used.iter()) {
            if !used {
                report.stale.push(StaleEntry {
                    file,
                    line: e.line,
                    entry: e.to_string(),
                });
            }
        }
    }
    Ok(report)
}

/// Checks every `.rs` file under `root` and returns the surviving
/// findings (allowlist and baseline applied; stale entries ignored —
/// use [`audit_workspace`] for the full verdict).
///
/// # Errors
///
/// Returns a description of filesystem or entry-file-format problems.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    Ok(audit_workspace(root)?.findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\n\
             f64-param thermal/src/grid.rs scale.temp_c\n\
             unwrap core/src/response.rs *  # trailing comment\n",
        )
        .expect("parses");
        assert!(a.permits("f64-param", "crates/thermal/src/grid.rs", "scale.temp_c"));
        assert!(!a.permits("f64-param", "crates/thermal/src/grid.rs", "other.temp_c"));
        assert!(a.permits("unwrap", "crates/core/src/response.rs", "anything"));
        assert!(!a.permits("unwrap", "crates/core/src/dtm.rs", "anything"));
        // Entries carry their source line for stale reporting.
        assert_eq!(a.entries()[0].line, 2);
        assert_eq!(a.entries()[1].line, 3);
    }

    #[test]
    fn malformed_allowlist_lines_are_reported() {
        let err = Allowlist::parse("f64-param only-two\n").expect_err("rejects");
        assert_eq!(err, vec![1]);
    }

    #[test]
    fn check_source_reports_lex_errors_as_diagnostics() {
        let d = check_source(
            "crates/core/src/x.rs",
            "let s = \"open",
            &Allowlist::default(),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lex");
    }

    #[test]
    fn allowlisted_findings_are_suppressed() {
        let allow = Allowlist::parse("f64-param thermal/src/foo.rs set_ambient.ambient_c\n")
            .expect("parses");
        let src = "pub fn set_ambient(ambient_c: f64) {}";
        assert!(check_source("crates/thermal/src/foo.rs", src, &allow).is_empty());
        assert_eq!(
            check_source("crates/thermal/src/foo.rs", src, &Allowlist::default()).len(),
            1
        );
    }

    #[test]
    fn diagnostic_json_has_locked_key_order() {
        let d = Diagnostic {
            rule: "no-raw-accumulation",
            path: "crates/thermal/src/solve.rs".to_string(),
            line: 42,
            symbol: "dot.acc".to_string(),
            message: "raw fold".to_string(),
        };
        assert_eq!(
            d.to_json().to_string(),
            r#"{"rule":"no-raw-accumulation","path":"crates/thermal/src/solve.rs","line":42,"symbol":"dot.acc","zone":"hot-path+instrumented","message":"raw fold"}"#
        );
    }

    #[test]
    fn stale_entries_become_pseudo_findings() {
        let s = StaleEntry {
            file: BASELINE_FILE,
            line: 7,
            entry: "unwrap core/src/dtm.rs *".to_string(),
        };
        let d = s.to_diagnostic();
        assert_eq!(d.rule, "stale-baseline");
        assert_eq!(d.path, BASELINE_FILE);
        assert_eq!(d.line, 7);
        let s = StaleEntry {
            file: ALLOW_FILE,
            line: 1,
            entry: "x y z".to_string(),
        };
        assert_eq!(s.to_diagnostic().rule, "stale-allow");
    }
}
