//! `xylem-lint`: a workspace static-analysis pass for the Xylem crates.
//!
//! Walks every `.rs` file in the workspace (skipping `target/` and
//! `vendor/`) and enforces five invariants that `rustc` cannot:
//!
//! 1. **`f64-param`** — public API functions of `xylem-thermal`,
//!    `xylem-power`, and `xylem-core` must not take a raw `f64` where the
//!    parameter name indicates a physical quantity; use the newtypes in
//!    `xylem_thermal::units` instead. Bulk `&[f64]` kernel interfaces are
//!    deliberately out of scope.
//! 2. **`unwrap`** — library code (crate `src/` trees, excluding binary
//!    targets and `#[cfg(test)]` items) must not contain `.unwrap()` or
//!    message-free `panic!()`-family macros.
//! 3. **`magic-float`** — float literals matching known physical-constant
//!    magnitudes (the Celsius offset, material conductivities and heat
//!    capacities) must live in `thermal/src/material.rs` or
//!    `power/src/blocks.rs`, not inline.
//! 4. **`no-panic-path`** — the fault-tolerance-critical modules (the DTM
//!    loop, the solver fallback ladder, the sensor model, checkpointing)
//!    must not contain `.unwrap()` or `.expect()` at all: the recovery
//!    paths must propagate every failure as a `Result`.
//! 5. **`no-println`** — modules instrumented with `xylem-obs` (the DTM
//!    loop, sensors, checkpointing, the solver, the bench harness, and
//!    the obs crate itself) must not use print-family macros; structured
//!    output goes through the observability sink so `--metrics-out`
//!    JSONL streams stay parseable.
//!
//! Known-good exceptions go in an optional `xylem-lint.allow` file at the
//! workspace root, one entry per line: `<rule> <path-suffix> <symbol>`
//! (symbol `*` matches anything; `#` starts a comment).
//!
//! Run with `cargo run -p xylem-lint` from the workspace root; the binary
//! prints `path:line: [rule] message` per finding and exits non-zero if
//! any survive the allowlist.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (`f64-param`, `unwrap`, `magic-float`, `lex`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// The offending symbol (`fn.param`, macro name, or literal text) —
    /// what an allowlist entry must name.
    pub symbol: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Parsed `xylem-lint.allow` entries.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    symbol: String,
}

impl Allowlist {
    /// Parses allowlist text: one `<rule> <path-suffix> <symbol>` entry
    /// per line, `#` comments, blank lines ignored. Malformed lines are
    /// reported as errors rather than silently dropped.
    ///
    /// # Errors
    ///
    /// Returns the 1-indexed line numbers of malformed entries.
    pub fn parse(text: &str) -> Result<Self, Vec<usize>> {
        let mut entries = Vec::new();
        let mut bad = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path_suffix), Some(symbol), None) => {
                    entries.push(AllowEntry {
                        rule: rule.to_string(),
                        path_suffix: path_suffix.to_string(),
                        symbol: symbol.to_string(),
                    });
                }
                _ => bad.push(idx + 1),
            }
        }
        if bad.is_empty() {
            Ok(Self { entries })
        } else {
            Err(bad)
        }
    }

    /// Whether a finding of `rule` at `path` on `symbol` is allowlisted.
    pub fn permits(&self, rule: &str, path: &str, symbol: &str) -> bool {
        self.entries.iter().any(|e| {
            e.rule == rule
                && path.ends_with(&e.path_suffix)
                && (e.symbol == "*" || e.symbol == symbol)
        })
    }
}

/// Runs every rule over one source file. Pure: no filesystem access, so
/// fixtures can be checked in-memory.
pub fn check_source(relpath: &str, src: &str, allow: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = match lexer::lex(src) {
        Ok(toks) => toks,
        Err(e) => {
            out.push(Diagnostic {
                rule: "lex",
                path: relpath.to_string(),
                line: e.line,
                symbol: "lex-error".to_string(),
                message: e.msg,
            });
            return out;
        }
    };
    let mask = rules::test_mask(&toks);
    rules::check_f64_params(relpath, &toks, &mask, allow, &mut out);
    rules::check_panics(relpath, &toks, &mask, allow, &mut out);
    rules::check_magic_floats(relpath, &toks, &mask, allow, &mut out);
    rules::check_no_panic_paths(relpath, &toks, &mask, allow, &mut out);
    rules::check_no_println(relpath, &toks, &mask, allow, &mut out);
    out
}

/// Collects every `.rs` file under `root`, skipping `target/`, `vendor/`,
/// and dot-directories. Paths are returned workspace-relative and sorted.
///
/// # Errors
///
/// Returns an I/O error description if a directory cannot be read.
pub fn collect_rust_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("path {} not under root: {e}", path.display()))?;
                files.push(rel.to_path_buf());
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Loads the optional `xylem-lint.allow` at `root`.
///
/// # Errors
///
/// Returns a description of malformed allowlist lines.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("xylem-lint.allow");
    match std::fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text).map_err(|lines| {
            format!(
                "{}: malformed entries on lines {:?} (expected `<rule> <path-suffix> <symbol>`)",
                path.display(),
                lines
            )
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Checks every `.rs` file under `root` and returns all findings.
///
/// # Errors
///
/// Returns a description of filesystem or allowlist-format problems.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let allow = load_allowlist(root)?;
    let mut out = Vec::new();
    for rel in collect_rust_files(root)? {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let relpath = rel.to_string_lossy().replace('\\', "/");
        out.extend(check_source(&relpath, &src, &allow));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\n\
             f64-param thermal/src/grid.rs scale.temp_c\n\
             unwrap core/src/response.rs *  # trailing comment\n",
        )
        .expect("parses");
        assert!(a.permits("f64-param", "crates/thermal/src/grid.rs", "scale.temp_c"));
        assert!(!a.permits("f64-param", "crates/thermal/src/grid.rs", "other.temp_c"));
        assert!(a.permits("unwrap", "crates/core/src/response.rs", "anything"));
        assert!(!a.permits("unwrap", "crates/core/src/dtm.rs", "anything"));
    }

    #[test]
    fn malformed_allowlist_lines_are_reported() {
        let err = Allowlist::parse("f64-param only-two\n").expect_err("rejects");
        assert_eq!(err, vec![1]);
    }

    #[test]
    fn check_source_reports_lex_errors_as_diagnostics() {
        let d = check_source(
            "crates/core/src/x.rs",
            "let s = \"open",
            &Allowlist::default(),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lex");
    }

    #[test]
    fn allowlisted_findings_are_suppressed() {
        let allow = Allowlist::parse("f64-param thermal/src/foo.rs set_ambient.ambient_c\n")
            .expect("parses");
        let src = "pub fn set_ambient(ambient_c: f64) {}";
        assert!(check_source("crates/thermal/src/foo.rs", src, &allow).is_empty());
        assert_eq!(
            check_source("crates/thermal/src/foo.rs", src, &Allowlist::default()).len(),
            1
        );
    }
}
