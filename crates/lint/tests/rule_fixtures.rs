//! Fixture-corpus tests for the four dataflow-aware rules: each rule has
//! a positive, a negative, and an allowlisted fixture file under
//! `tests/fixtures/<rule>/`. The fixtures live inside `crates/lint/`
//! (where every path-scoped rule is inert), and the tests mount their
//! content at an in-zone workspace path via the pure `analyze_source` /
//! `check_source` API.

use std::path::Path;

use xylem_lint::{analyze_source, check_source, Allowlist, Diagnostic};

/// Reads `tests/fixtures/<rule_dir>/<name>.rs`.
fn fixture(rule_dir: &str, name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_dir)
        .join(format!("{name}.rs"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must exist: {e}", path.display()))
}

/// Raw findings of one rule for a fixture mounted at `mount`.
fn findings_of(rule: &str, mount: &str, src: &str) -> Vec<Diagnostic> {
    let all = analyze_source(mount, src);
    assert!(
        !all.iter().any(|d| d.rule == "lex"),
        "fixture must lex: {all:?}"
    );
    all.into_iter().filter(|d| d.rule == rule).collect()
}

// ---- no-nondet-collections ---------------------------------------

const NONDET: &str = "no-nondet-collections";
const HOT_MOUNT: &str = "crates/thermal/src/solve.rs";

#[test]
fn nondet_collections_positive_fixture_fires() {
    let d = findings_of(NONDET, HOT_MOUNT, &fixture("no_nondet_collections", "pos"));
    // Import, two type positions, two constructors, for each of
    // HashMap/HashSet: every mention counts.
    assert_eq!(d.len(), 6, "{d:?}");
    assert!(d.iter().any(|d| d.symbol == "HashMap"), "{d:?}");
    assert!(d.iter().any(|d| d.symbol == "HashSet"), "{d:?}");
}

#[test]
fn nondet_collections_negative_fixture_is_clean() {
    let src = fixture("no_nondet_collections", "neg");
    assert!(
        analyze_source(HOT_MOUNT, &src).is_empty(),
        "whole file must be clean"
    );
}

#[test]
fn nondet_collections_allowed_fixture_suppressed_by_entry() {
    let src = fixture("no_nondet_collections", "allowed");
    assert!(
        !findings_of(NONDET, HOT_MOUNT, &src).is_empty(),
        "fires raw"
    );
    let allow = Allowlist::parse("no-nondet-collections thermal/src/solve.rs HashSet\n")
        .expect("entry parses");
    assert!(check_source(HOT_MOUNT, &src, &allow).is_empty());
}

// ---- no-raw-accumulation -----------------------------------------

const RAW_ACC: &str = "no-raw-accumulation";

#[test]
fn raw_accumulation_positive_fixture_fires() {
    let d = findings_of(RAW_ACC, HOT_MOUNT, &fixture("no_raw_accumulation", "pos"));
    let symbols: Vec<&str> = d.iter().map(|d| d.symbol.as_str()).collect();
    assert_eq!(
        symbols,
        vec!["residual_norm.acc", "total_power.sum", "scaled_total.sum"],
        "{d:?}"
    );
}

#[test]
fn raw_accumulation_negative_fixture_is_clean() {
    let src = fixture("no_raw_accumulation", "neg");
    assert!(
        analyze_source(HOT_MOUNT, &src).is_empty(),
        "whole file must be clean"
    );
}

#[test]
fn raw_accumulation_allowed_fixture_suppressed_by_entry() {
    let src = fixture("no_raw_accumulation", "allowed");
    let raw = findings_of(RAW_ACC, HOT_MOUNT, &src);
    assert_eq!(raw.len(), 1, "{raw:?}");
    assert_eq!(raw[0].symbol, "phase_boundaries.acc");
    let allow = Allowlist::parse("no-raw-accumulation thermal/src/solve.rs phase_boundaries.acc\n")
        .expect("entry parses");
    assert!(check_source(HOT_MOUNT, &src, &allow).is_empty());
}

#[test]
fn raw_accumulation_exempt_in_reduce_home() {
    // The same positive fixture is legal inside the reduction helpers'
    // own module — the chunk-serial loops there are the pattern itself.
    let src = fixture("no_raw_accumulation", "pos");
    let d = findings_of(RAW_ACC, "crates/thermal/src/reduce.rs", &src);
    assert!(d.is_empty(), "{d:?}");
}

// ---- no-unit-escape ----------------------------------------------

const UNIT_ESC: &str = "no-unit-escape";
const LIB_MOUNT: &str = "crates/core/src/system.rs";

#[test]
fn unit_escape_positive_fixture_fires() {
    let d = findings_of(UNIT_ESC, LIB_MOUNT, &fixture("no_unit_escape", "pos"));
    let symbols: Vec<&str> = d.iter().map(|d| d.symbol.as_str()).collect();
    assert_eq!(
        symbols,
        vec![
            "margin.limit",
            "margin.ambient",
            "as_kelvin_raw.k",
            "budget_raw.w",
            "Watts.0"
        ],
        "{d:?}"
    );
}

#[test]
fn unit_escape_negative_fixture_is_clean() {
    let src = fixture("no_unit_escape", "neg");
    assert!(
        analyze_source(LIB_MOUNT, &src).is_empty(),
        "whole file must be clean"
    );
}

#[test]
fn unit_escape_allowed_fixture_suppressed_by_entry() {
    let src = fixture("no_unit_escape", "allowed");
    let raw = findings_of(UNIT_ESC, LIB_MOUNT, &src);
    assert_eq!(raw.len(), 1, "{raw:?}");
    assert_eq!(raw[0].symbol, "encode_raw.t");
    let allow =
        Allowlist::parse("no-unit-escape core/src/system.rs encode_raw.t\n").expect("entry parses");
    assert!(check_source(LIB_MOUNT, &src, &allow).is_empty());
}

#[test]
fn unit_escape_exempt_in_units_and_material_tables() {
    let src = fixture("no_unit_escape", "pos");
    for exempt in [
        "crates/thermal/src/units.rs",
        "crates/thermal/src/material.rs",
        "crates/power/src/blocks.rs",
    ] {
        let d = findings_of(UNIT_ESC, exempt, &src);
        assert!(d.is_empty(), "{exempt}: {d:?}");
    }
}

// ---- obs-coverage ------------------------------------------------

const OBS_COV: &str = "obs-coverage";
const INSTR_MOUNT: &str = "crates/core/src/dtm.rs";

#[test]
fn obs_coverage_positive_fixture_fires_per_dark_fn() {
    let d = findings_of(OBS_COV, INSTR_MOUNT, &fixture("obs_coverage", "pos"));
    let symbols: Vec<&str> = d.iter().map(|d| d.symbol.as_str()).collect();
    assert_eq!(symbols, vec!["recover", "step", "reload"], "{d:?}");
}

#[test]
fn obs_coverage_negative_fixture_is_clean() {
    let src = fixture("obs_coverage", "neg");
    assert!(
        analyze_source(INSTR_MOUNT, &src).is_empty(),
        "whole file must be clean"
    );
}

#[test]
fn obs_coverage_allowed_fixture_suppressed_by_entry() {
    let src = fixture("obs_coverage", "allowed");
    let raw = findings_of(OBS_COV, INSTR_MOUNT, &src);
    assert_eq!(raw.len(), 1, "{raw:?}");
    assert_eq!(raw[0].symbol, "accounted_retry");
    let allow =
        Allowlist::parse("obs-coverage core/src/dtm.rs accounted_retry\n").expect("entry parses");
    assert!(check_source(INSTR_MOUNT, &src, &allow).is_empty());
}

#[test]
fn obs_coverage_out_of_scope_in_free_and_obs_modules() {
    let src = fixture("obs_coverage", "pos");
    // Free-zone library code is not required to emit telemetry...
    assert!(findings_of(OBS_COV, "crates/stack/src/builder.rs", &src).is_empty());
    // ...and the obs crate is its own failure domain.
    assert!(findings_of(OBS_COV, "crates/obs/src/sink.rs", &src).is_empty());
}

// ---- determinism-zone mounts (stencil + gmg) ---------------------

const ZONE_MOUNTS: [&str; 2] = ["crates/thermal/src/stencil.rs", "crates/thermal/src/gmg.rs"];

#[test]
fn stencil_and_gmg_mounts_are_inside_the_determinism_zone() {
    // The matrix-free kernels and the geometric-multigrid hierarchy
    // carry the same bit-identity claim as the CSR solver core; both
    // path-scoped rules must fire when a dirty file mounts there.
    let pos = fixture("zone_mount", "pos");
    for mount in ZONE_MOUNTS {
        let acc = findings_of(RAW_ACC, mount, &pos);
        assert_eq!(acc.len(), 1, "{mount}: {acc:?}");
        assert_eq!(acc[0].symbol, "plane_sum.acc", "{mount}");
        let nondet = findings_of(NONDET, mount, &pos);
        assert!(
            nondet.iter().any(|d| d.symbol == "HashMap"),
            "{mount}: {nondet:?}"
        );
    }
}

#[test]
fn zone_mount_negative_fixture_is_clean_in_zone() {
    let neg = fixture("zone_mount", "neg");
    for mount in ZONE_MOUNTS {
        let d = analyze_source(mount, &neg);
        assert!(d.is_empty(), "{mount}: {d:?}");
    }
}

#[test]
fn zone_mount_positive_fixture_is_inert_outside_the_zone() {
    let pos = fixture("zone_mount", "pos");
    let free = analyze_source("crates/stack/src/builder.rs", &pos);
    assert!(free.is_empty(), "free zone: {free:?}");
    for name in ["pos", "neg"] {
        let src = fixture("zone_mount", name);
        let relpath = format!("crates/lint/tests/fixtures/zone_mount/{name}.rs");
        let d = analyze_source(&relpath, &src);
        assert!(d.is_empty(), "{relpath} must be inert in place: {d:?}");
    }
}

// ---- determinism-zone mounts (sweep engine + journal) ------------

const SWEEP_MOUNTS: [&str; 2] = ["crates/sweep/src/engine.rs", "crates/sweep/src/journal.rs"];
const NO_PANIC: &str = "no-panic-path";

#[test]
fn sweep_engine_and_journal_mounts_are_inside_the_determinism_zone() {
    // The sweep orchestrator carries the full robustness contract: it
    // may never panic (it absorbs panics), never iterate nondet
    // collections (resume digests must be bit-stable), never float-fold
    // off the reduction helpers, and never swallow a degraded task
    // without a counter. All four rules must fire on a dirty mount.
    let pos = fixture("sweep_zone", "pos");
    for mount in SWEEP_MOUNTS {
        let panics = findings_of(NO_PANIC, mount, &pos);
        assert_eq!(panics.len(), 1, "{mount}: {panics:?}");
        assert_eq!(panics[0].symbol, "expect", "{mount}");
        let acc = findings_of(RAW_ACC, mount, &pos);
        assert_eq!(acc.len(), 1, "{mount}: {acc:?}");
        assert_eq!(acc[0].symbol, "mean_latency.acc", "{mount}");
        let nondet = findings_of(NONDET, mount, &pos);
        assert!(
            nondet.iter().any(|d| d.symbol == "HashMap"),
            "{mount}: {nondet:?}"
        );
        let dark = findings_of(OBS_COV, mount, &pos);
        assert_eq!(dark.len(), 1, "{mount}: {dark:?}");
        assert_eq!(dark[0].symbol, "drain", "{mount}");
    }
}

#[test]
fn sweep_zone_negative_fixture_is_clean_in_zone() {
    let neg = fixture("sweep_zone", "neg");
    for mount in SWEEP_MOUNTS {
        let d = analyze_source(mount, &neg);
        assert!(d.is_empty(), "{mount}: {d:?}");
    }
}

#[test]
fn sweep_zone_positive_fixture_is_inert_outside_the_zone() {
    let pos = fixture("sweep_zone", "pos");
    let free = analyze_source("crates/stack/src/builder.rs", &pos);
    assert!(free.is_empty(), "free zone: {free:?}");
    for name in ["pos", "neg"] {
        let src = fixture("sweep_zone", name);
        let relpath = format!("crates/lint/tests/fixtures/sweep_zone/{name}.rs");
        let d = analyze_source(&relpath, &src);
        assert!(d.is_empty(), "{relpath} must be inert in place: {d:?}");
    }
}

// ---- robustness-zone mounts (serve scheduler + session) ----------

const SERVE_SCHED_MOUNT: &str = "crates/serve/src/scheduler.rs";
const SERVE_SESSION_MOUNT: &str = "crates/serve/src/session.rs";

#[test]
fn serve_scheduler_mount_is_crash_only_and_instrumented() {
    // The scheduler absorbs panics and deadline misses, so it may
    // never panic itself (rule 4) and may never degrade a session
    // darkly (obs-coverage). It is not a float hot path, so the
    // accumulation rules stay out of scope here.
    let pos = fixture("serve_zone", "pos");
    let panics = findings_of(NO_PANIC, SERVE_SCHED_MOUNT, &pos);
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert_eq!(panics[0].symbol, "expect");
    let dark = findings_of(OBS_COV, SERVE_SCHED_MOUNT, &pos);
    assert_eq!(dark.len(), 1, "{dark:?}");
    assert_eq!(dark[0].symbol, "settle");
}

#[test]
fn serve_session_mount_is_inside_the_determinism_zone() {
    // Slice execution carries the bit-identical-resume claim: no
    // panicking escape hatches, no hash-ordered iteration, no raw
    // float folds.
    let pos = fixture("serve_zone", "pos");
    let panics = findings_of(NO_PANIC, SERVE_SESSION_MOUNT, &pos);
    assert_eq!(panics.len(), 1, "{panics:?}");
    let acc = findings_of(RAW_ACC, SERVE_SESSION_MOUNT, &pos);
    assert_eq!(acc.len(), 1, "{acc:?}");
    assert_eq!(acc[0].symbol, "mean_hotspot.acc");
    let nondet = findings_of(NONDET, SERVE_SESSION_MOUNT, &pos);
    assert!(nondet.iter().any(|d| d.symbol == "HashMap"), "{nondet:?}");
}

#[test]
fn serve_zone_negative_fixture_is_clean_in_zone() {
    let neg = fixture("serve_zone", "neg");
    for mount in [SERVE_SCHED_MOUNT, SERVE_SESSION_MOUNT] {
        let d = analyze_source(mount, &neg);
        assert!(d.is_empty(), "{mount}: {d:?}");
    }
}

#[test]
fn serve_zone_positive_fixture_is_inert_outside_the_zone() {
    let pos = fixture("serve_zone", "pos");
    // chaos.rs is deliberately outside the no-panic zone: its injected
    // panics are the chaos harness's signal, not a crash vector.
    let chaos = findings_of(NO_PANIC, "crates/serve/src/chaos.rs", &pos);
    assert!(chaos.is_empty(), "chaos.rs exempt: {chaos:?}");
    let free = analyze_source("crates/stack/src/builder.rs", &pos);
    assert!(free.is_empty(), "free zone: {free:?}");
    for name in ["pos", "neg"] {
        let src = fixture("serve_zone", name);
        let relpath = format!("crates/lint/tests/fixtures/serve_zone/{name}.rs");
        let d = analyze_source(&relpath, &src);
        assert!(d.is_empty(), "{relpath} must be inert in place: {d:?}");
    }
}

// ---- determinism-zone mount (scenario lowering) ------------------

const SCENARIO_MOUNT: &str = "crates/scenario/src/lower.rs";

#[test]
fn scenario_lowering_mount_is_inside_the_determinism_zone() {
    // Identical .stk sources must lower to bit-identical stacks, so the
    // lowering module carries the hot-path contract: no hash-ordered
    // collections (material/floorplan resolution order) and no raw
    // float folds.
    let pos = fixture("scenario_zone", "pos");
    let acc = findings_of(RAW_ACC, SCENARIO_MOUNT, &pos);
    assert_eq!(acc.len(), 1, "{acc:?}");
    assert_eq!(acc[0].symbol, "painted_area.area");
    let nondet = findings_of(NONDET, SCENARIO_MOUNT, &pos);
    assert!(nondet.iter().any(|d| d.symbol == "HashMap"), "{nondet:?}");
}

#[test]
fn scenario_zone_negative_fixture_is_clean_in_zone() {
    let neg = fixture("scenario_zone", "neg");
    let d = analyze_source(SCENARIO_MOUNT, &neg);
    assert!(d.is_empty(), "{SCENARIO_MOUNT}: {d:?}");
}

#[test]
fn scenario_zone_positive_fixture_is_inert_outside_the_zone() {
    let pos = fixture("scenario_zone", "pos");
    // The parser is NOT in the zone: its output is position-stamped
    // text, not physics, and its own tests lock totality instead.
    let free = analyze_source("crates/scenario/src/parser.rs", &pos);
    assert!(free.is_empty(), "free zone: {free:?}");
    for name in ["pos", "neg"] {
        let src = fixture("scenario_zone", name);
        let relpath = format!("crates/lint/tests/fixtures/scenario_zone/{name}.rs");
        let d = analyze_source(&relpath, &src);
        assert!(d.is_empty(), "{relpath} must be inert in place: {d:?}");
    }
}

// ---- corpus hygiene ----------------------------------------------

#[test]
fn fixture_corpus_is_inert_at_its_real_path() {
    // The fixture files are walked by the workspace lint run at their
    // actual `crates/lint/tests/fixtures/...` paths; every rule must be
    // inert there, or the corpus itself would fail CI.
    for dir in [
        "no_nondet_collections",
        "no_raw_accumulation",
        "no_unit_escape",
        "obs_coverage",
    ] {
        for name in ["pos", "neg", "allowed"] {
            let src = fixture(dir, name);
            let relpath = format!("crates/lint/tests/fixtures/{dir}/{name}.rs");
            let d = analyze_source(&relpath, &src);
            assert!(d.is_empty(), "{relpath} must be inert in place: {d:?}");
        }
    }
}
