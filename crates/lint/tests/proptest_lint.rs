//! Property tests for the lint lexer, plus the whole-workspace
//! parseability check the ISSUE asks for: xylem-lint must be able to lex
//! every `.rs` file in the workspace.

use proptest::prelude::*;

use xylem_lint::lexer::lex;
use xylem_lint::{check_source, collect_rust_files, Allowlist};

#[test]
fn every_workspace_file_lexes() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let files = collect_rust_files(&root).expect("workspace walks");
    assert!(
        files.len() > 30,
        "workspace walk looks wrong: only {} .rs files",
        files.len()
    );
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("file reads");
        assert!(
            lex(&src).is_ok(),
            "{} does not lex: {:?}",
            rel.display(),
            lex(&src).err()
        );
    }
}

/// Alphabet biased toward the lexer's tricky constructs: quotes, hashes,
/// escapes, comment delimiters, dots, exponents.
const ALPHABET: &[u8] = b"abr#\"'\\/*.0123456789eE_<>(){}!,:; \n-+xf";

fn to_source(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The lexer must never panic: every input either tokenizes or yields
    // a LexError with a line number.
    fn lexer_total_on_adversarial_input(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = to_source(&bytes);
        match lex(&src) {
            Ok(toks) => {
                for t in &toks {
                    prop_assert!(t.line >= 1);
                }
            }
            Err(e) => prop_assert!(e.line >= 1),
        }
    }

    // check_source is equally total: any input yields diagnostics (possibly
    // a single `lex` diagnostic), never a panic.
    fn check_source_total(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = to_source(&bytes);
        let ds = check_source("crates/thermal/src/fuzz.rs", &src, &Allowlist::default());
        for d in &ds {
            prop_assert!(d.line >= 1);
        }
    }

    // Token lines are monotonically non-decreasing in source order.
    fn token_lines_monotone(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = to_source(&bytes);
        if let Ok(toks) = lex(&src) {
            for w in toks.windows(2) {
                prop_assert!(w[0].line <= w[1].line);
            }
        }
    }
}
