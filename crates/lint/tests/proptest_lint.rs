//! Property tests for the lint lexer and the two-pass analyzer, plus the
//! whole-workspace parseability check the ISSUE asks for: xylem-lint must
//! be able to lex every `.rs` file in the workspace.

use proptest::prelude::*;

use xylem_lint::lexer::lex;
use xylem_lint::{analyze_source, check_source, collect_rust_files, Allowlist};

#[test]
fn every_workspace_file_lexes() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let files = collect_rust_files(&root).expect("workspace walks");
    assert!(
        files.len() > 30,
        "workspace walk looks wrong: only {} .rs files",
        files.len()
    );
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("file reads");
        assert!(
            lex(&src).is_ok(),
            "{} does not lex: {:?}",
            rel.display(),
            lex(&src).err()
        );
    }
}

/// Alphabet biased toward the lexer's tricky constructs: quotes, hashes,
/// escapes, comment delimiters, dots, exponents, and the operators the
/// dataflow rules pattern-match on (`+=`, `=>`, `.0`).
const ALPHABET: &[u8] = b"abr#\"'\\/*.0123456789eE_<>(){}!,:; \n-+xf=&|";

/// Vocabulary biased toward the symbol-table pass: fn/let/use skeletons,
/// unit newtypes, collection names, degradation markers, and the
/// operators the cross-token rules look for. Random sequences of these
/// produce almost-plausible Rust that stresses pass 1 + pass 2 far more
/// densely than raw byte soup.
const VOCAB: &[&str] = &[
    "fn",
    "let",
    "mut",
    "use",
    "pub",
    "match",
    "if",
    "while",
    "return",
    "Err",
    "Ok",
    "for",
    "in",
    "f64",
    "usize",
    "0.0",
    "0usize",
    "1e-3",
    "acc",
    "sum",
    "x",
    "HashMap",
    "HashSet",
    "Celsius",
    "Watts",
    "fallback",
    "retry_budget",
    "xylem_obs",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "::",
    ":",
    ";",
    ",",
    ".",
    ".0",
    "+=",
    "=",
    "=>",
    "->",
    "&",
    "#",
    "\"s\"",
    "'a",
    "//c\n",
    "|",
];

/// Workspace mounts spanning every zone the rules dispatch on.
const MOUNTS: &[&str] = &[
    "crates/thermal/src/solve.rs",  // hot-path + instrumented
    "crates/thermal/src/reduce.rs", // hot-path, raw-accum exempt
    "crates/core/src/dtm.rs",       // hot-path + instrumented
    "crates/obs/src/sink.rs",       // instrumented prefix, obs-coverage exempt
    "crates/thermal/src/units.rs",  // unit-escape exempt
    "crates/stack/src/builder.rs",  // free-zone library
    "crates/bench/src/main.rs",     // binary crate
];

fn to_source(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The lexer must never panic: every input either tokenizes or yields
    // a LexError with a line number.
    fn lexer_total_on_adversarial_input(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = to_source(&bytes);
        match lex(&src) {
            Ok(toks) => {
                for t in &toks {
                    prop_assert!(t.line >= 1);
                }
            }
            Err(e) => prop_assert!(e.line >= 1),
        }
    }

    // check_source is equally total: any input yields diagnostics (possibly
    // a single `lex` diagnostic), never a panic.
    fn check_source_total(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = to_source(&bytes);
        let ds = check_source("crates/thermal/src/fuzz.rs", &src, &Allowlist::default());
        for d in &ds {
            prop_assert!(d.line >= 1);
        }
    }

    // Token lines are monotonically non-decreasing in source order.
    fn token_lines_monotone(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = to_source(&bytes);
        if let Ok(toks) = lex(&src) {
            for w in toks.windows(2) {
                prop_assert!(w[0].line <= w[1].line);
            }
        }
    }

    // The full two-pass analyzer (symbol table + nine rules) is total on
    // byte soup at every zone mount: no panics, no zero line numbers.
    fn analyzer_total_on_byte_soup(
        bytes in collection::vec(any::<u8>(), 0..200),
        mount in 0..MOUNTS.len(),
    ) {
        let src = to_source(&bytes);
        for d in analyze_source(MOUNTS[mount], &src) {
            prop_assert!(d.line >= 1);
        }
    }

    // ...and on keyword-dense pseudo-Rust, which reaches much deeper into
    // the fn-span / unit-binding / accumulator bookkeeping of pass 1.
    fn analyzer_total_on_keyword_soup(
        words in collection::vec(0..VOCAB.len(), 0..120),
        mount in 0..MOUNTS.len(),
    ) {
        let src: String = words
            .iter()
            .flat_map(|&w| [VOCAB[w], " "])
            .collect();
        for d in analyze_source(MOUNTS[mount], &src) {
            prop_assert!(d.line >= 1);
            prop_assert!(!d.symbol.is_empty() || d.rule == "lex");
        }
    }
}
