//! POSITIVE fixture for the sweep-engine *mount points*: one file that
//! trips every rule the sweep orchestrator modules are registered
//! under — a `.expect(` panic path, a raw float accumulator, `HashMap`
//! mentions, and a dark degradation handler with no telemetry. Mounted
//! by the test harness at the `crates/sweep/src/{engine,journal}.rs`
//! relpaths to pin those modules inside the determinism zone; inert
//! where it actually lives (crates/lint/tests/fixtures).

use std::collections::HashMap;

pub fn mean_latency(samples: &[f64]) -> f64 {
    let mut acc = 0.0;
    for s in samples {
        acc += s;
    }
    acc / samples.len() as f64
}

pub fn shard_index(keys: &[u64]) -> HashMap<u64, usize> {
    let mut index = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        index.insert(*k, i);
    }
    index
}

pub fn load_header(line: Option<&str>) -> &str {
    line.expect("journal header present")
}

pub fn drain(queue: &mut Vec<u64>) -> usize {
    let mut retired = 0usize;
    while let Some(task) = queue.pop() {
        if let Err(_e) = run_with_retry(task) {
            // Swallowed failure, no counter bump: exactly the dark
            // degradation path obs-coverage exists to catch.
            continue;
        }
        retired += 1;
    }
    retired
}

fn run_with_retry(task: u64) -> Result<(), u64> {
    if task % 7 == 0 {
        Err(task)
    } else {
        Ok(())
    }
}
