//! NEGATIVE fixture for the sweep-engine mount points: the clean
//! equivalents — ordered maps, integer accumulation, propagated errors,
//! and telemetry on the swallowed-failure path — must stay clean when
//! mounted at the `crates/sweep/src/{engine,journal}.rs` relpaths.

use std::collections::BTreeMap;

pub fn total_retired(per_shard: &[u64]) -> u64 {
    let mut acc: u64 = 0;
    for n in per_shard {
        acc += n;
    }
    acc
}

pub fn shard_index(keys: &[u64]) -> BTreeMap<u64, usize> {
    let mut index = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        index.insert(*k, i);
    }
    index
}

pub fn load_header(line: Option<&str>) -> Result<&str, &'static str> {
    line.ok_or("journal missing its sweep_header line")
}

pub fn drain(queue: &mut Vec<u64>) -> usize {
    let mut retired = 0usize;
    while let Some(task) = queue.pop() {
        if let Err(_e) = run_task(task) {
            xylem_obs::metrics::incr(xylem_obs::metrics::Counter::SweepTasksQuarantined);
            continue;
        }
        retired += 1;
    }
    retired
}

fn run_task(task: u64) -> Result<(), u64> {
    if task % 7 == 0 {
        Err(task)
    } else {
        Ok(())
    }
}
