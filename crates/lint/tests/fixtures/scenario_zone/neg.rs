//! NEGATIVE fixture for the scenario-lowering determinism zone: the
//! declaration-ordered map and an element-seeded fold must stay clean
//! when mounted at `crates/scenario/src/lower.rs`.

use std::collections::BTreeMap;

pub fn material_index(names: &[String]) -> BTreeMap<String, usize> {
    let mut index = BTreeMap::new();
    for (i, n) in names.iter().enumerate() {
        index.insert(n.clone(), i);
    }
    index
}

pub fn painted_area(patches: &[(f64, f64)]) -> f64 {
    // Seeded from the first patch: the fold order is the declaration
    // order of the patches themselves, not a scheduling artifact.
    let mut area = patches[0].0 * patches[0].1;
    for (w, h) in &patches[1..] {
        area += w * h;
    }
    area
}
