//! POSITIVE fixture for the scenario-lowering determinism zone: a
//! hash-ordered material index plus a raw float fold over patch areas.
//! Mounted by the test harness at `crates/scenario/src/lower.rs` to pin
//! that the lowering module sits inside the hot-path zone; inert where
//! it actually lives (crates/lint/tests/fixtures).

use std::collections::HashMap;

pub fn material_index(names: &[String]) -> HashMap<String, usize> {
    let mut index = HashMap::new();
    for (i, n) in names.iter().enumerate() {
        index.insert(n.clone(), i);
    }
    index
}

pub fn painted_area(patches: &[(f64, f64)]) -> f64 {
    let mut area = 0.0;
    for (w, h) in patches {
        area += w * h;
    }
    area
}
