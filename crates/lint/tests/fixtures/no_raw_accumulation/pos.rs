//! POSITIVE fixture for `no-raw-accumulation`: from-scratch `+=` folds
//! into float-literal-initialized accumulators and float `.sum()` calls
//! in a hot-path module must fire.

pub fn residual_norm(r: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in r {
        acc += x * x;
    }
    acc.sqrt()
}

pub fn total_power(watts: &[f64]) -> f64 {
    watts.iter().sum()
}

pub fn scaled_total(watts: &[f64]) -> f64 {
    watts.iter().map(|w| w * 1e-3).sum::<f64>()
}
