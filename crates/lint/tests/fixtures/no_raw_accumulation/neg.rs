//! NEGATIVE fixture for `no-raw-accumulation`: row-seeded stencil
//! accumulators, integer folds, and the deterministic pairwise helpers
//! must not fire in a hot-path module.

pub fn row_apply(r: &[f64], vals: &[f64]) -> f64 {
    // Seeded from an existing element, not a literal: a row-local
    // stencil fold whose order is fixed by the row, not by chunking.
    let mut acc = r[0];
    for v in vals {
        acc += v;
    }
    acc
}

pub fn nnz(rows: &[Vec<u32>]) -> usize {
    let count: usize = rows.iter().map(|r| r.len()).sum();
    count
}

pub fn total_iters(iters: &[u64]) -> u64 {
    iters.iter().sum::<u64>()
}

pub fn deterministic_total(watts: &[f64]) -> f64 {
    xylem_thermal::reduce::pairwise_sum(watts)
}

pub fn deterministic_energy(power: &[f64], dt: &[f64]) -> f64 {
    xylem_thermal::reduce::pairwise_dot(power, dt)
}
