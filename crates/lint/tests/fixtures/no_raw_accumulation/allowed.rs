//! ALLOWLISTED fixture for `no-raw-accumulation`: an inherently serial
//! running total (a prefix scan) can be exempted per-symbol:
//!
//!     no-raw-accumulation thermal/src/solve.rs phase_boundaries.acc

pub fn phase_boundaries(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut out = Vec::new();
    for w in weights {
        acc += w;
        out.push(acc);
    }
    out
}
