//! NEGATIVE fixture for `no-nondet-collections`: ordered collections
//! and indexed vectors in a hot-path module are the sanctioned
//! replacements and must not fire.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn response_cache() -> Vec<(u32, f64)> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut cache: BTreeMap<u32, f64> = BTreeMap::new();
    cache.insert(7, 42.0);
    seen.insert(7);
    let mut out = Vec::new();
    for (k, v) in &cache {
        out.push((*k, *v));
    }
    // Indexed vectors are always fine.
    let table: Vec<f64> = vec![0.5; 16];
    out.push((0, table[3]));
    out
}
