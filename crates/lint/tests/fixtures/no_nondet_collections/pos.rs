//! POSITIVE fixture for `no-nondet-collections`: every `HashMap` /
//! `HashSet` mention in a hot-path module must fire (import, type,
//! construction, iteration). Mounted by the test harness at a hot-path
//! relpath; inert where it actually lives (crates/lint/tests/fixtures).

use std::collections::HashMap;
use std::collections::HashSet;

pub fn response_cache() -> Vec<(u32, f64)> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut cache: HashMap<u32, f64> = HashMap::new();
    cache.insert(7, 42.0);
    seen.insert(7);
    // Iteration order of this loop is unspecified: the exact bug the
    // rule exists to stop.
    let mut out = Vec::new();
    for (k, v) in &cache {
        out.push((*k, *v));
    }
    out
}
