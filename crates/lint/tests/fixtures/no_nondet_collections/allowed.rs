//! ALLOWLISTED fixture for `no-nondet-collections`: a `HashSet` used
//! only for membership tests (never iterated) can be exempted with an
//! explicit allow entry naming the symbol:
//!
//!     no-nondet-collections thermal/src/solve.rs HashSet

use std::collections::HashSet;

pub fn dedup_count(ids: &[u32]) -> usize {
    let set: HashSet<u32> = ids.iter().copied().collect();
    set.len()
}
