//! POSITIVE fixture for `obs-coverage`: functions in an instrumented
//! module with a fallback/degradation branch but no `xylem_obs`
//! reference must fire — one per dark function.

pub fn recover(reading: Result<f64, String>) -> f64 {
    match reading {
        Ok(v) => v,
        Err(_) => {
            // Degrading to a safe default with no telemetry: dark.
            apply_fallback()
        }
    }
}

pub fn step(used: u64, cap: u64) -> bool {
    if budget_exhausted(used, cap) {
        return false;
    }
    true
}

pub fn reload(state: Result<u64, String>) -> u64 {
    if let Err(ref e) = state {
        log_and_reset(e);
    }
    state.unwrap_or(0)
}

fn apply_fallback() -> f64 {
    0.0
}

fn budget_exhausted(used: u64, cap: u64) -> bool {
    used > cap
}

fn log_and_reset(_e: &str) {}
