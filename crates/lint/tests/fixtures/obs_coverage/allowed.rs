//! ALLOWLISTED fixture for `obs-coverage`: a function whose callee
//! already emits the telemetry can be exempted by name:
//!
//!     obs-coverage core/src/dtm.rs accounted_retry

pub fn accounted_retry(attempts: u64) -> u64 {
    // The retry counter is bumped inside retry_with_telemetry; this
    // wrapper only forwards.
    retry_with_telemetry(attempts)
}

fn retry_with_telemetry(attempts: u64) -> u64 {
    attempts + 1
}
