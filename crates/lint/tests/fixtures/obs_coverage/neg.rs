//! NEGATIVE fixture for `obs-coverage`: degradation branches that do
//! reference the obs sink, pure error propagation, and marker-named
//! function *definitions* must not fire.

pub fn recover(reading: Result<f64, String>) -> f64 {
    match reading {
        Ok(v) => v,
        Err(_) => {
            xylem_obs::incr(xylem_obs::Counter::FailsafeEvents);
            apply_fallback()
        }
    }
}

pub fn load(state: Result<u64, String>) -> Result<u64, String> {
    // Pure propagation is not a degradation branch.
    match state {
        Ok(v) => Ok(v),
        Err(e) => Err(e),
    }
}

pub fn validate(period: f64) -> Result<(), String> {
    if let Err(e) = check_positive(period) {
        return Err(format!("period: {e}"));
    }
    Ok(())
}

/// Defining a marker-named predicate is not the same as degrading.
pub fn budget_exhausted(used: u64, cap: u64) -> bool {
    used > cap
}

fn apply_fallback() -> f64 {
    0.0
}

fn check_positive(v: f64) -> Result<(), String> {
    if v > 0.0 {
        Ok(())
    } else {
        Err("must be positive".to_string())
    }
}
