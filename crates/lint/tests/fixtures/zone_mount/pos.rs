//! POSITIVE fixture for the determinism-zone *mount points*: a raw
//! float accumulator plus `HashMap` mentions in one file. Mounted by
//! the test harness at the stencil/GMG hot-path relpaths to pin that
//! those modules sit inside the zone; inert where it actually lives
//! (crates/lint/tests/fixtures).

use std::collections::HashMap;

pub fn plane_sum(coeff: &[f64]) -> f64 {
    let mut acc = 0.0;
    for c in coeff {
        acc += c;
    }
    acc
}

pub fn level_index(levels: &[u32]) -> HashMap<u32, usize> {
    let mut index = HashMap::new();
    for (i, l) in levels.iter().enumerate() {
        index.insert(*l, i);
    }
    index
}
