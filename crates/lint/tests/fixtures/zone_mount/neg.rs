//! NEGATIVE fixture for the determinism-zone mount points: the
//! element-seeded accumulator carve-out and an ordered map must stay
//! clean when mounted at the stencil/GMG hot-path relpaths.

use std::collections::BTreeMap;

pub fn line_fold(coeff: &[f64]) -> f64 {
    // Seeded from the first element: a line-local fold whose order is
    // fixed by the x-line itself, not by chunk scheduling.
    let mut acc = coeff[0];
    for c in &coeff[1..] {
        acc += c;
    }
    acc
}

pub fn level_index(levels: &[u32]) -> BTreeMap<u32, usize> {
    let mut index = BTreeMap::new();
    for (i, l) in levels.iter().enumerate() {
        index.insert(*l, i);
    }
    index
}
