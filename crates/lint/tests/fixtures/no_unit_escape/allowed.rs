//! ALLOWLISTED fixture for `no-unit-escape`: a serializer that must see
//! the raw representation can be exempted per-symbol:
//!
//!     no-unit-escape core/src/system.rs encode_raw.t

use xylem_thermal::units::Celsius;

pub fn encode_raw(t: Celsius) -> u64 {
    t.0.to_bits()
}
