//! NEGATIVE fixture for `no-unit-escape`: `.get()` is the sanctioned
//! accessor, and `.0`/`.1` on plain tuples must not fire.

use xylem_thermal::units::{Celsius, Watts};

pub fn margin(limit: Celsius, ambient: Celsius) -> f64 {
    limit.get() - ambient.get()
}

pub fn budget_raw() -> f64 {
    let w = Watts::new(15.0);
    w.get()
}

pub fn tuple_fields(pair: (usize, f64)) -> f64 {
    let best = (3usize, 2.5);
    pair.1 + best.1 + (pair.0 + best.0) as f64
}
