//! POSITIVE fixture for `no-unit-escape`: `.0` projections on
//! unit-newtype bindings (parameter, annotated let, constructor-bound
//! let) and on constructor expressions must fire in library source.

use xylem_thermal::units::{Celsius, Kelvin, Watts};

pub fn margin(limit: Celsius, ambient: Celsius) -> f64 {
    limit.0 - ambient.0
}

pub fn as_kelvin_raw(limit: Celsius) -> f64 {
    let k: Kelvin = limit.to_kelvin();
    k.0
}

pub fn budget_raw() -> f64 {
    let w = Watts::new(15.0);
    w.0
}

pub fn inline_escape() -> f64 {
    Watts::new(1.5).0
}
