//! POSITIVE fixture for the serve-scheduler *mount points*: one file
//! that trips every rule the serve modules are registered under — an
//! `.expect(` panic path in what must be crash-only code, a raw float
//! accumulator over frame temperatures, a `HashMap` whose iteration
//! order would leak into the tick schedule, and a dark quarantine
//! handler that absorbs a fault without bumping a counter. Mounted by
//! the test harness at the `crates/serve/src/{scheduler,session}.rs`
//! relpaths; inert where it actually lives (crates/lint/tests/fixtures).

use std::collections::HashMap;

pub fn mean_hotspot(frames: &[f64]) -> f64 {
    let mut acc = 0.0;
    for t in frames {
        acc += t;
    }
    acc / frames.len() as f64
}

pub fn tenant_queues(tenants: &[u64]) -> HashMap<u64, usize> {
    let mut queues = HashMap::new();
    for (i, t) in tenants.iter().enumerate() {
        queues.insert(*t, i);
    }
    queues
}

pub fn durable_frame(line: Option<&str>) -> &str {
    line.expect("frame journal ends at the durable watermark")
}

pub fn settle(sessions: &mut Vec<u64>) -> usize {
    let mut completed = 0usize;
    while let Some(id) = sessions.pop() {
        if let Err(_e) = advance(id) {
            // Quarantined without a counter bump: exactly the dark
            // degradation path obs-coverage exists to catch.
            continue;
        }
        completed += 1;
    }
    completed
}

fn advance(id: u64) -> Result<(), u64> {
    if id % 5 == 0 {
        Err(id)
    } else {
        Ok(())
    }
}
