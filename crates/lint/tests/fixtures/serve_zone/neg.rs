//! NEGATIVE fixture for the serve-scheduler mount points: the clean
//! equivalents — ordered maps, integer accumulation, propagated
//! options, and telemetry on the quarantine path — must stay clean
//! when mounted at the `crates/serve/src/{scheduler,session}.rs`
//! relpaths.

use std::collections::BTreeMap;

pub fn total_frames(per_session: &[u64]) -> u64 {
    let mut acc: u64 = 0;
    for n in per_session {
        acc += n;
    }
    acc
}

pub fn tenant_queues(tenants: &[u64]) -> BTreeMap<u64, usize> {
    let mut queues = BTreeMap::new();
    for (i, t) in tenants.iter().enumerate() {
        queues.insert(*t, i);
    }
    queues
}

pub fn durable_frame(line: Option<&str>) -> Result<&str, &'static str> {
    line.ok_or("frame journal ended before the durable watermark")
}

pub fn settle(sessions: &mut Vec<u64>) -> usize {
    let mut completed = 0usize;
    while let Some(id) = sessions.pop() {
        if let Err(_e) = advance(id) {
            xylem_obs::metrics::incr(xylem_obs::metrics::Counter::ServeSessionsQuarantined);
            continue;
        }
        completed += 1;
    }
    completed
}

fn advance(id: u64) -> Result<(), u64> {
    if id % 5 == 0 {
        Err(id)
    } else {
        Ok(())
    }
}
