//! End-to-end tests of the `xylem-lint` binary: it must fail (with
//! `file:line` diagnostics) on a fixture workspace that reintroduces the
//! violations, enforce the baseline ratchet and stale-entry checks, emit
//! schema-locked JSONL under `--json`, and pass on the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run_lint_args(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xylem-lint"))
        .args(extra)
        .arg(root)
        .output()
        .expect("lint binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code present"), text)
}

fn run_lint(root: &Path) -> (i32, String) {
    run_lint_args(root, &[])
}

/// Writes a minimal fixture workspace containing one library file.
fn write_fixture(dir: &Path, relfile: &str, src: &str) {
    std::fs::create_dir_all(dir.join(relfile).parent().expect("file has parent"))
        .expect("fixture dirs create");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("fixture manifest writes");
    std::fs::write(dir.join(relfile), src).expect("fixture source writes");
}

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xylem-lint-fixture-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("fixture dir creates");
    dir
}

#[test]
fn real_workspace_is_clean() {
    let (code, text) = run_lint(&workspace_root());
    assert_eq!(code, 0, "expected clean workspace, got:\n{text}");
    assert!(text.contains("0 finding(s)"), "{text}");
    assert!(text.contains("0 stale"), "{text}");
    assert!(text.contains("— clean"), "{text}");
}

#[test]
fn reintroduced_raw_f64_param_fails_with_location() {
    let dir = fixture_dir("f64");
    write_fixture(
        &dir,
        "crates/thermal/src/regress.rs",
        "//! Regression fixture.\n\npub fn set_hotspot(hotspot_c: f64) -> f64 {\n    hotspot_c\n}\n",
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "lint must fail on raw f64 quantity param:\n{text}");
    assert!(
        text.contains("crates/thermal/src/regress.rs:3"),
        "diagnostic must carry file:line, got:\n{text}"
    );
    assert!(text.contains("[f64-param]"), "{text}");
    assert!(text.contains("hotspot_c"), "{text}");
}

#[test]
fn reintroduced_library_unwrap_fails_with_location() {
    let dir = fixture_dir("unwrap");
    write_fixture(
        &dir,
        "crates/stack/src/regress.rs",
        "fn build() -> usize {\n    let v: Option<usize> = None;\n    v.unwrap()\n}\n",
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "lint must fail on library unwrap:\n{text}");
    assert!(
        text.contains("crates/stack/src/regress.rs:3"),
        "diagnostic must carry file:line, got:\n{text}"
    );
    assert!(text.contains("[unwrap]"), "{text}");
}

#[test]
fn magic_constant_outside_tables_fails() {
    let dir = fixture_dir("magic");
    write_fixture(
        &dir,
        "crates/thermal/src/regress.rs",
        "pub fn to_kelvin_inline(c: f64) -> f64 {\n    c + 273.15\n}\n",
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "lint must fail on inline 273.15:\n{text}");
    assert!(text.contains("crates/thermal/src/regress.rs:2"), "{text}");
    assert!(text.contains("[magic-float]"), "{text}");
}

#[test]
fn allowlist_suppresses_fixture_finding() {
    let dir = fixture_dir("allow");
    write_fixture(
        &dir,
        "crates/thermal/src/regress.rs",
        "pub fn set_hotspot(hotspot_c: f64) -> f64 {\n    hotspot_c\n}\n",
    );
    std::fs::write(
        dir.join("xylem-lint.allow"),
        "f64-param thermal/src/regress.rs set_hotspot.hotspot_c\n",
    )
    .expect("allowlist writes");
    let (code, text) = run_lint(&dir);
    assert_eq!(code, 0, "allowlisted finding must pass:\n{text}");
    assert!(text.contains("1 suppressed"), "{text}");
}

#[test]
fn missing_root_is_a_usage_error() {
    let dir = std::env::temp_dir().join("xylem-lint-no-such-root");
    let _ = std::fs::remove_dir_all(&dir);
    let (code, _) = run_lint(&dir);
    assert_eq!(code, 2);
}

/// Acceptance demo: a HashMap iteration deliberately introduced into the
/// thermal solver is caught by the determinism auditor.
#[test]
fn demo_hashmap_iteration_in_solver_is_caught() {
    let dir = fixture_dir("demo-hashmap");
    write_fixture(
        &dir,
        "crates/thermal/src/solve.rs",
        concat!(
            "use std::collections::HashMap;\n",
            "\n",
            "pub fn hottest_layer(readings: &[(u32, f64)]) -> f64 {\n",
            "    let mut by_layer: HashMap<u32, f64> = HashMap::new();\n",
            "    for (layer, t) in readings {\n",
            "        by_layer.insert(*layer, t.max(0.0));\n",
            "    }\n",
            "    by_layer.values().copied().fold(0.0, f64::max)\n",
            "}\n",
        ),
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "HashMap in the solver must fail lint:\n{text}");
    assert!(text.contains("[no-nondet-collections]"), "{text}");
    assert!(text.contains("crates/thermal/src/solve.rs"), "{text}");
    assert!(
        text.contains("hash iteration order is nondeterministic"),
        "{text}"
    );
}

#[test]
fn stale_allow_entry_fails_unless_escaped() {
    let dir = fixture_dir("stale-allow");
    write_fixture(
        &dir,
        "crates/stack/src/clean.rs",
        "pub fn layers() -> usize {\n    4\n}\n",
    );
    std::fs::write(
        dir.join("xylem-lint.allow"),
        "# the exempted finding was fixed long ago\nf64-param stack/src/clean.rs gone.param\n",
    )
    .expect("allowlist writes");

    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "stale allow entry must fail:\n{text}");
    assert!(text.contains("[stale-allow]"), "{text}");
    assert!(
        text.contains("xylem-lint.allow:2"),
        "stale report carries file:line: {text}"
    );
    assert!(text.contains("matches zero findings"), "{text}");

    let (code, text) = run_lint_args(&dir, &["--allow-stale"]);
    assert_eq!(
        code, 0,
        "--allow-stale must downgrade to a warning:\n{text}"
    );
    assert!(text.contains("warning (stale, allowed):"), "{text}");
}

#[test]
fn stale_baseline_entry_fails() {
    let dir = fixture_dir("stale-baseline");
    write_fixture(
        &dir,
        "crates/stack/src/clean.rs",
        "pub fn layers() -> usize {\n    4\n}\n",
    );
    std::fs::write(
        dir.join("xylem-lint.baseline"),
        "no-raw-accumulation thermal/src/solve.rs gone.acc\n",
    )
    .expect("baseline writes");
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "stale baseline entry must fail:\n{text}");
    assert!(text.contains("[stale-baseline]"), "{text}");
    assert!(text.contains("xylem-lint.baseline:1"), "{text}");
}

/// The ratchet: baselined findings stay suppressed, but a *new* finding
/// in the same file still fails CI.
#[test]
fn baseline_pins_old_finding_but_new_finding_fails() {
    let dir = fixture_dir("ratchet");
    let src = concat!(
        "pub fn residual(r: &[f64]) -> f64 {\n",
        "    let mut acc = 0.0;\n",
        "    for v in r {\n",
        "        acc += v * v;\n",
        "    }\n",
        "    acc\n",
        "}\n",
    );
    write_fixture(&dir, "crates/thermal/src/solve.rs", src);
    std::fs::write(
        dir.join("xylem-lint.baseline"),
        "no-raw-accumulation thermal/src/solve.rs residual.acc\n",
    )
    .expect("baseline writes");

    let (code, text) = run_lint(&dir);
    assert_eq!(code, 0, "baselined finding must be pinned:\n{text}");
    assert!(text.contains("1 suppressed"), "{text}");

    // Grow the file: the old finding stays pinned, the new one fails.
    let grown = format!("{src}\npub fn total(w: &[f64]) -> f64 {{\n    w.iter().sum()\n}}\n");
    std::fs::write(dir.join("crates/thermal/src/solve.rs"), grown).expect("fixture grows");
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "new finding must not ride the baseline:\n{text}");
    assert!(text.contains("[no-raw-accumulation]"), "{text}");
    assert!(text.contains("`total`"), "new finding reported: {text}");
    assert!(
        !text.contains("`residual`"),
        "old finding stays pinned: {text}"
    );
    assert!(text.contains("1 finding(s), 1 suppressed"), "{text}");
}

/// `--json` emits one JSON object per line with the locked key order
/// `rule, path, line, symbol, zone, message` — parsed back with the same
/// hand-rolled JSON layer that writes it.
#[test]
fn json_mode_emits_schema_locked_jsonl() {
    let dir = fixture_dir("jsonl");
    write_fixture(
        &dir,
        "crates/thermal/src/solve.rs",
        "use std::collections::HashMap;\n\npub fn cache() -> usize {\n    0\n}\n",
    );
    std::fs::write(
        dir.join("xylem-lint.baseline"),
        "no-raw-accumulation thermal/src/solve.rs gone.acc\n",
    )
    .expect("baseline writes");

    let (code, text) = run_lint_args(&dir, &["--json"]);
    assert_ne!(code, 0, "{text}");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    // One finding (the HashMap import) plus one stale-baseline record.
    assert_eq!(lines.len(), 2, "{text}");
    for line in &lines {
        let v = xylem_obs::json::parse(line).expect("each line is valid JSON");
        let xylem_obs::json::Value::Object(fields) = v else {
            panic!("each line is a JSON object: {line}");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec!["rule", "path", "line", "symbol", "zone", "message"],
            "locked JSONL schema violated on: {line}"
        );
    }
    let first = xylem_obs::json::parse(lines[0]).expect("parses");
    assert_eq!(
        first.get("rule").and_then(|v| v.as_str()),
        Some("no-nondet-collections")
    );
    assert_eq!(
        first.get("zone").and_then(|v| v.as_str()),
        Some("hot-path+instrumented")
    );
    let second = xylem_obs::json::parse(lines[1]).expect("parses");
    assert_eq!(
        second.get("rule").and_then(|v| v.as_str()),
        Some("stale-baseline")
    );
    assert_eq!(
        second.get("path").and_then(|v| v.as_str()),
        Some("xylem-lint.baseline")
    );
}
