//! End-to-end tests of the `xylem-lint` binary: it must fail (with
//! `file:line` diagnostics) on a fixture workspace that reintroduces the
//! violations, and pass on the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run_lint(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xylem-lint"))
        .arg(root)
        .output()
        .expect("lint binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code present"), text)
}

/// Writes a minimal fixture workspace containing one library file.
fn write_fixture(dir: &Path, relfile: &str, src: &str) {
    std::fs::create_dir_all(dir.join(relfile).parent().expect("file has parent"))
        .expect("fixture dirs create");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("fixture manifest writes");
    std::fs::write(dir.join(relfile), src).expect("fixture source writes");
}

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xylem-lint-fixture-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("fixture dir creates");
    dir
}

#[test]
fn real_workspace_is_clean() {
    let (code, text) = run_lint(&workspace_root());
    assert_eq!(code, 0, "expected clean workspace, got:\n{text}");
    assert!(text.contains("workspace clean"), "{text}");
}

#[test]
fn reintroduced_raw_f64_param_fails_with_location() {
    let dir = fixture_dir("f64");
    write_fixture(
        &dir,
        "crates/thermal/src/regress.rs",
        "//! Regression fixture.\n\npub fn set_hotspot(hotspot_c: f64) -> f64 {\n    hotspot_c\n}\n",
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "lint must fail on raw f64 quantity param:\n{text}");
    assert!(
        text.contains("crates/thermal/src/regress.rs:3"),
        "diagnostic must carry file:line, got:\n{text}"
    );
    assert!(text.contains("[f64-param]"), "{text}");
    assert!(text.contains("hotspot_c"), "{text}");
}

#[test]
fn reintroduced_library_unwrap_fails_with_location() {
    let dir = fixture_dir("unwrap");
    write_fixture(
        &dir,
        "crates/stack/src/regress.rs",
        "fn build() -> usize {\n    let v: Option<usize> = None;\n    v.unwrap()\n}\n",
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "lint must fail on library unwrap:\n{text}");
    assert!(
        text.contains("crates/stack/src/regress.rs:3"),
        "diagnostic must carry file:line, got:\n{text}"
    );
    assert!(text.contains("[unwrap]"), "{text}");
}

#[test]
fn magic_constant_outside_tables_fails() {
    let dir = fixture_dir("magic");
    write_fixture(
        &dir,
        "crates/thermal/src/regress.rs",
        "pub fn to_kelvin_inline(c: f64) -> f64 {\n    c + 273.15\n}\n",
    );
    let (code, text) = run_lint(&dir);
    assert_ne!(code, 0, "lint must fail on inline 273.15:\n{text}");
    assert!(text.contains("crates/thermal/src/regress.rs:2"), "{text}");
    assert!(text.contains("[magic-float]"), "{text}");
}

#[test]
fn allowlist_suppresses_fixture_finding() {
    let dir = fixture_dir("allow");
    write_fixture(
        &dir,
        "crates/thermal/src/regress.rs",
        "pub fn set_hotspot(hotspot_c: f64) -> f64 {\n    hotspot_c\n}\n",
    );
    std::fs::write(
        dir.join("xylem-lint.allow"),
        "f64-param thermal/src/regress.rs set_hotspot.hotspot_c\n",
    )
    .expect("allowlist writes");
    let (code, text) = run_lint(&dir);
    assert_eq!(code, 0, "allowlisted finding must pass:\n{text}");
}

#[test]
fn missing_root_is_a_usage_error() {
    let dir = std::env::temp_dir().join("xylem-lint-no-such-root");
    let _ = std::fs::remove_dir_all(&dir);
    let (code, _) = run_lint(&dir);
    assert_eq!(code, 2);
}
