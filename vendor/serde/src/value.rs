//! The JSON-like value tree the stub serializes through.

use std::collections::BTreeMap;
use std::fmt;

/// Field map of an object. `BTreeMap` gives stable (sorted) key order,
/// which keeps serialized output deterministic across runs.
pub type Map = BTreeMap<String, Value>;

/// A JSON number, kept in its native width to avoid precision loss on
/// `u64`/`i64` round-trips (the workspace serializes 64-bit counters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers, like serde_json's
    /// `as_f64`).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I64(x) => x as f64,
            Number::U64(x) => x as f64,
            Number::F64(x) => x,
        }
    }

    /// Checked conversion into any primitive integer type.
    pub fn try_as<T: TryFrom<i64> + TryFrom<u64>>(self) -> Option<T> {
        match self {
            Number::I64(x) => T::try_from(x).ok(),
            Number::U64(x) => T::try_from(x).ok(),
            // Accept floats that are exactly integral (serde_json is
            // stricter, but this only ever sees our own output).
            Number::F64(x) if x.fract() == 0.0 && x.abs() < 9.1e18 => T::try_from(x as i64).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(x) => write!(f, "{x}"),
            Number::U64(x) => write!(f, "{x}"),
            Number::F64(x) => write!(f, "{x}"),
        }
    }
}

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl crate::Serialize for Value {
    /// Identity: a value tree serializes as itself. Lets callers
    /// round-trip arbitrary JSON documents (parse, edit a key, pretty
    /// print) through `serde_json` without a typed schema.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, crate::DeError> {
        Ok(v.clone())
    }
}

impl Value {
    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}
