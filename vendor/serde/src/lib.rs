//! Offline stand-in for `serde`, API-compatible with the slice of serde
//! this workspace uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and fieldless enums, driven through `serde_json`.
//!
//! Instead of serde's visitor-based zero-copy data model, everything
//! round-trips through an owned [`Value`] tree. That is slower but
//! dependency-free, which is what matters here: the build environment has
//! no network access to crates.io (see `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON-like value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable path + message.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// A fresh error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Prefixes the error with a field name for context.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

macro_rules! impl_int {
    ($($t:ty => $var:ident as $conv:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$var(*self as $conv))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .try_as::<$t>()
                        .ok_or_else(|| DeError::new(format!(
                            "number {n} out of range for {}", stringify!($t)
                        ))),
                    other => Err(DeError::new(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$(stringify!($idx)),+].len();
                        if items.len() != expect {
                            return Err(DeError::new(format!(
                                "expected {expect}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected tuple array, got {}", other.kind()
                    ))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}
