//! Offline stand-in for `rayon` (no crates.io access; see
//! `vendor/README.md`).
//!
//! Provides the structured-parallelism surface the workspace's numeric
//! kernels use — [`scope`]/[`Scope::spawn`], [`join`], and
//! [`current_num_threads`] — backed by one persistent global thread pool,
//! so repeated kernel launches (a conjugate-gradient iteration issues
//! several per step) never pay thread-spawn latency.
//!
//! Semantics mirror real rayon where it matters to callers:
//!
//! * `scope` does not return until every task spawned on it (including
//!   nested spawns) has finished, which is what makes borrowing stack
//!   data from tasks sound;
//! * a panic inside a task is captured and re-thrown from `scope`;
//! * the pool size honours `RAYON_NUM_THREADS`, defaulting to
//!   [`std::thread::available_parallelism`];
//! * on a single-threaded pool, tasks run inline on the caller — same
//!   observable behaviour, no channel traffic, and no possibility of the
//!   lone worker deadlocking on a nested `scope`.
//!
//! Parallel iterators are intentionally absent: the workspace's kernels
//! chunk their slices explicitly (deterministic reduction boundaries are
//! part of their contract), so `scope` is the whole story.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: Mutex<mpsc::Sender<Job>>,
    threads: usize,
}

impl Pool {
    fn submit(&self, job: Job) {
        let guard = self
            .sender
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Workers only exit when the sender is dropped, and the pool is a
        // process-lifetime static, so the send cannot fail.
        guard.send(job).expect("rayon stub: worker pool shut down");
    }
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        // With one thread, everything runs inline on the caller; don't
        // spawn a worker that would never receive a job.
        if threads > 1 {
            for i in 0..threads {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("rayon-stub-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    })
                    .expect("rayon stub: failed to spawn worker thread");
            }
        }
        Pool {
            sender: Mutex::new(sender),
            threads,
        }
    })
}

/// Number of threads in the global pool (1 means callers should expect
/// inline execution).
#[must_use]
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Countdown latch: `scope` blocks on it until every spawned task has
/// run; tasks that panicked mark it poisoned so the panic surfaces on the
/// scope owner's thread.
struct Latch {
    state: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Latch {
            state: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn increment(&self) {
        let mut n = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *n += 1;
    }

    fn decrement(&self) {
        let mut n = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *n -= 1;
        if *n == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut n = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *n != 0 {
            n = self
                .done
                .wait(n)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// A fork-join scope handed to [`scope`]'s closure; spawn tasks that may
/// borrow anything outliving the scope.
pub struct Scope<'scope> {
    latch: Arc<Latch>,
    inline: bool,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `f` on the pool (or inline on a single-threaded pool). The
    /// enclosing [`scope`] call waits for it.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.inline {
            let nested = Scope {
                latch: Arc::clone(&self.latch),
                inline: true,
                _marker: std::marker::PhantomData,
            };
            f(&nested);
            return;
        }
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                latch: Arc::clone(&latch),
                inline: false,
                _marker: std::marker::PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(&nested)));
            if result.is_err() {
                latch.panicked.store(true, Ordering::SeqCst);
            }
            latch.decrement();
        });
        // SAFETY: `scope` blocks on the latch until this task (and every
        // task it spawns, which share the latch) has finished, so all
        // `'scope` borrows the closure captured strictly outlive its
        // execution. The lifetime is erased only to cross the channel.
        let task: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(task) };
        pool().submit(task);
    }
}

/// Creates a fork-join scope: tasks spawned on it may borrow from the
/// caller's stack; all of them complete before `scope` returns.
///
/// # Panics
///
/// Re-throws (as a new panic) if any spawned task panicked.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        latch: Arc::new(Latch::new()),
        inline: pool().threads <= 1,
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    s.latch.wait();
    if s.latch.panicked.load(Ordering::SeqCst) {
        panic!("a task spawned in rayon::scope panicked");
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb: Option<RB> = None;
    let ra = scope(|s| {
        s.spawn(|_| {
            rb = Some(b());
        });
        a()
    });
    // `scope` waited for the spawned task, so `rb` is always populated.
    (ra, rb.expect("rayon stub: join task did not run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_all_tasks_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scope_supports_disjoint_mutable_chunks() {
        let mut data = vec![0u64; 1000];
        scope(|s| {
            for (k, chunk) in data.chunks_mut(100).enumerate() {
                s.spawn(move |_| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (k * 100 + i) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_propagates_task_panics() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(caught.is_err());
    }
}
