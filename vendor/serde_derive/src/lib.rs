//! Offline stand-in for `serde_derive`.
//!
//! The real crate expands through `syn`/`quote`; neither is available in
//! this build environment, so the token stream is parsed by hand. Only
//! the shapes this workspace actually derives are supported:
//!
//! - structs with named fields (any visibility, no generics)
//! - fieldless ("C-like") enums
//!
//! Anything else produces a `compile_error!` naming what was seen, so a
//! future unsupported derive fails loudly at build time instead of
//! misbehaving at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips one `#[...]` (or `#![...]`) attribute if the iterator is
/// positioned at its `#`.
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // Optional `!` of inner attributes.
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '!' {
                        tokens.next();
                    }
                }
                // The bracketed body.
                tokens.next();
            }
            _ => return,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic {kind} `{name}` is not supported by the vendored serde_derive stub"
            ));
        }
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "{kind} `{name}`: only brace-bodied items are supported, got {other:?}"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Parenthesized/bracketed types arrive as atomic groups, so only
        // `<`/`>` nesting needs tracking.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; the vendored serde_derive stub only supports fieldless enums"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("variant `{name}` has a discriminant; unsupported"))
            }
            other => return Err(format!("unexpected token after variant `{name}`: {other:?}")),
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal compile_error! always parses")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\n\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             o.get({f:?}).unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| e.in_field({f:?}))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let o = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                             format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                         ::std::result::Result::Ok({name} {{ {builds} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let s = v.as_str().ok_or_else(|| ::serde::DeError::new(\
                             format!(\"expected variant string for {name}, got {{}}\", v.kind())))?;\n\
                         match s {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
