//! Offline stand-in for `rand` 0.8 (no crates.io access on this machine;
//! see `vendor/README.md`).
//!
//! Implements the exact surface the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_bool`, `Rng::gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — not
//! the real StdRng (ChaCha12), but the workspace only relies on
//! deterministic, well-mixed streams, never on a specific one.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < 2^-40 for the spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u = (f64::sample(rng) * (1u64 << 53) as f64 + 0.5) / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for rand's `StdRng`: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..16usize);
            assert!(x < 16);
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 1e5;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }
}
