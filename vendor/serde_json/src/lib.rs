//! Offline stand-in for `serde_json`, covering the API surface this
//! workspace uses: [`to_string`], [`to_vec`], [`from_str`], [`from_slice`].
//!
//! Floats print via Rust's `Display`, which is shortest-round-trip (the
//! behavior the real crate's `float_roundtrip` feature guarantees for
//! parsing); non-finite floats serialize as `null`, matching serde_json.

use serde::{Deserialize, Number, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a JSON string.
///
/// # Errors
///
/// Never fails for the value shapes the stub supports; the `Result` keeps
/// the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to a JSON byte vector.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` to 2-space-indented JSON, like the real crate's
/// function of the same name (implemented here by re-indenting the
/// compact form with a string-literal-aware scanner).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let indent = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    for ch in compact.chars() {
        if in_str {
            out.push(ch);
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                out.push(ch);
            }
            '{' | '[' => {
                out.push(ch);
                depth += 1;
                indent(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                indent(&mut out, depth);
                out.push(ch);
            }
            ',' => {
                out.push(ch);
                indent(&mut out, depth);
            }
            ':' => out.push_str(": "),
            _ => out.push(ch),
        }
    }
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parses a value of type `T` from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::F64(x)) if !x.is_finite() => out.push_str("null"),
        Value::Number(Number::F64(x)) => {
            // Keep a distinguishing ".0" on integral floats so the text
            // stays recognizably a float (serde_json does the same).
            if x.fract() == 0.0 && x.abs() < 1e16 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        let n = if is_float {
            Number::F64(text.parse().map_err(|e| Error(format!("{e}: {text:?}")))?)
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(x) => Number::I64(x),
                Err(_) => Number::F64(text.parse().map_err(|e| Error(format!("{e}: {text:?}")))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(x) => Number::U64(x),
                Err(_) => Number::F64(text.parse().map_err(|e| Error(format!("{e}: {text:?}")))?),
            }
        };
        Ok(Value::Number(n))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_floats() {
        let xs = vec![1.0f64, -0.5, 1e-9, 3.141592653589793, 2.5e300];
        let s = super::to_string(&xs).unwrap();
        let back: Vec<f64> = super::from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn roundtrip_u64_precision() {
        let xs = vec![u64::MAX, 0, 1 << 60];
        let s = super::to_string(&xs).unwrap();
        let back: Vec<u64> = super::from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let text = super::to_string(&String::from(s)).unwrap();
        let back: String = super::from_str(&text).unwrap();
        assert_eq!(s, back);
    }
}
