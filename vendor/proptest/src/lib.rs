//! Offline stand-in for `proptest` (no crates.io access; see
//! `vendor/README.md`).
//!
//! Supports the subset the workspace's property tests use:
//!
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] fn .. }`
//! - strategies: `any::<T>()`, integer/float ranges, tuples of strategies,
//!   `proptest::collection::vec(strategy, len_range)`
//! - `prop_assert!` / `prop_assert_eq!`
//!
//! Cases are generated from a fixed seed, so failures reproduce exactly.
//! There is **no shrinking**: a failing case reports its inputs via the
//! assertion message and the iteration index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range.
        let mag = 10f64.powf(rng.gen_range(-12.0..12.0));
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Runs `cases` iterations of a property. Used by the [`proptest!`]
/// expansion; not part of the public proptest API.
pub fn run_property<F>(name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    // Seed derived from the property name so distinct properties explore
    // distinct streams but each run is reproducible.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for i in 0..cases {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(u64::from(i)));
        if let Err(msg) = case(&mut rng) {
            panic!("property {name:?} failed at case {i}/{cases}: {msg}");
        }
    }
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (
        $(#[$meta:meta])* fn $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $(#[$meta])* fn $($rest)*);
    };
    (@funcs ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            $crate::run_property(stringify!($name), cases, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts inside a property; on failure the case is reported with its
/// inputs (via the formatted message) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}
