//! Offline stand-in for `criterion` (no crates.io access; see
//! `vendor/README.md`).
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` surface the
//! workspace's benches use. Instead of criterion's statistical engine it
//! runs a short warmup plus a fixed number of timed iterations and prints
//! the mean wall time per iteration — enough to compare runs by eye.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter value, like criterion's.
    #[must_use]
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `function_name/parameter` id, like criterion's.
    #[must_use]
    pub fn new<S: Into<String>, P: Display>(function_name: S, p: P) -> Self {
        BenchmarkId(format!("{}/{p}", function_name.into()))
    }
}

/// Times closures handed to it.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed() / u32::try_from(self.iters).unwrap_or(u32::MAX);
        println!("    {per_iter:>12.2?} / iter ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.0);
        let mut b = Bencher { iters: 10 };
        f(&mut b, input);
        self
    }

    /// Ends the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

/// Entry point, mirroring criterion's `Criterion` driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {name}");
        let mut b = Bencher { iters: 10 };
        f(&mut b);
        self
    }
}

/// Declares a group runner function, like criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
