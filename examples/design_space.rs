//! Design-space exploration beyond the paper's defaults: sweep the
//! pillar footprint, the die thickness, and the stack height, and report
//! the resulting banke-over-base temperature advantage.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use xylem_stack::{StackConfig, XylemScheme};
use xylem_thermal::grid::GridSpec;
use xylem_workloads::Benchmark;

use xylem::system::{SystemConfig, XylemSystem};

/// Exploration runs on a 32x32 grid: each swept configuration needs its
/// own unit-response set, and full 64x64 resolution would make this
/// example take the better part of an hour on first run.
fn explore_config(scheme: XylemScheme) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(scheme);
    cfg.grid = GridSpec::new(32, 32);
    cfg
}

fn hotspot(mut make: impl FnMut(&mut StackConfig)) -> Result<f64, Box<dyn std::error::Error>> {
    let mut cfg = explore_config(XylemScheme::BankEnhanced);
    make(&mut cfg.stack);
    let mut sys = XylemSystem::new(cfg)?;
    Ok(sys.evaluate_uniform(Benchmark::Barnes, 2.4)?.proc_hotspot_c)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Baseline reference.
    let mut base = XylemSystem::new(explore_config(XylemScheme::Base))?;
    let t_base = base
        .evaluate_uniform(Benchmark::Barnes, 2.4)?
        .proc_hotspot_c;
    println!("base @2.4 GHz (Barnes): {t_base:.2} C\n");

    println!("pillar footprint sweep (banke):");
    for um in [100.0, 250.0, 450.0, 600.0] {
        let t = hotspot(|s| s.pillar_footprint = um * 1e-6)?;
        println!(
            "  {um:>5.0} um cluster: {t:6.2} C  (saves {:5.2} C)",
            t_base - t
        );
    }

    println!("\ndie thickness sweep (banke, paper Fig. 18 axis):");
    for um in [50.0, 100.0, 200.0] {
        let t = hotspot(|s| s.die_thickness = um * 1e-6)?;
        println!("  {um:>5.0} um dies:    {t:6.2} C");
    }

    println!("\nstack height sweep (banke, paper Fig. 19 axis):");
    for n in [2usize, 4, 8, 12, 16] {
        let t = hotspot(|s| s.n_dram_dies = n)?;
        println!("  {n:>2} DRAM dies:     {t:6.2} C");
    }

    println!("\nD2D underfill sensitivity (banke): what if future underfills improve?");
    for lambda in [0.5, 1.5, 5.0, 15.0] {
        // Rebuild with a custom D2D conductivity by scaling the layer
        // thickness equivalently (Rth = t/lambda): half the thickness
        // doubles the effective conductance.
        let t = hotspot(|s| s.d2d_thickness = 20e-6 * 1.5 / lambda)?;
        println!("  lambda_D2D = {lambda:>4.1} W/m-K equivalent: {t:6.2} C");
    }
    Ok(())
}
