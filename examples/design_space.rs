//! Design-space exploration beyond the paper's defaults: sweep the
//! pillar footprint, the die thickness, and the stack height, and report
//! the resulting banke-over-base temperature advantage.
//!
//! Each section is one declarative axis sweep through the
//! `xylem-sweep` engine, which shards the grid across workers, retries
//! transient solver failures, and reuses one built system per stack
//! geometry — the example only declares axes and formats results.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use xylem::system::default_cache_dir;
use xylem_stack::XylemScheme;
use xylem_sweep::{run_sweep, SweepOptions, SweepSpec};
use xylem_workloads::Benchmark;

/// Exploration runs on a 32x32 grid: each swept configuration needs its
/// own unit-response set, and full 64x64 resolution would make this
/// example take the better part of an hour on first run.
fn explore_spec() -> SweepSpec {
    SweepSpec {
        schemes: vec![XylemScheme::BankEnhanced],
        benchmarks: vec![Benchmark::Barnes],
        f_ghz: vec![2.4],
        grid: 32,
        ..SweepSpec::default()
    }
}

/// Runs one axis sweep and returns the processor hotspot per task, in
/// axis (= task id) order.
fn hotspots(spec: &SweepSpec) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let opts = SweepOptions {
        cache_dir: Some(default_cache_dir()),
        ..SweepOptions::default()
    };
    let report = run_sweep(spec, &opts)?;
    report.require_complete()?;
    Ok(report
        .records
        .iter()
        .filter_map(|r| r.result.as_ref())
        .map(|t| t.proc_hotspot_c)
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Baseline reference: a single-task sweep over the base scheme.
    let mut base_spec = explore_spec();
    base_spec.schemes = vec![XylemScheme::Base];
    let t_base = *hotspots(&base_spec)?
        .first()
        .ok_or("base sweep returned no tasks")?;
    println!("base @2.4 GHz (Barnes): {t_base:.2} C\n");

    println!("pillar footprint sweep (banke):");
    let pillars = [100.0, 250.0, 450.0, 600.0];
    let mut spec = explore_spec();
    spec.pillar_footprint_um = pillars.to_vec();
    for (um, t) in pillars.iter().zip(hotspots(&spec)?) {
        println!(
            "  {um:>5.0} um cluster: {t:6.2} C  (saves {:5.2} C)",
            t_base - t
        );
    }

    println!("\ndie thickness sweep (banke, paper Fig. 18 axis):");
    let thicknesses = [50.0, 100.0, 200.0];
    let mut spec = explore_spec();
    spec.die_thickness_um = thicknesses.to_vec();
    for (um, t) in thicknesses.iter().zip(hotspots(&spec)?) {
        println!("  {um:>5.0} um dies:    {t:6.2} C");
    }

    println!("\nstack height sweep (banke, paper Fig. 19 axis):");
    let heights = [2usize, 4, 8, 12, 16];
    let mut spec = explore_spec();
    spec.n_dram_dies = heights.to_vec();
    for (n, t) in heights.iter().zip(hotspots(&spec)?) {
        println!("  {n:>2} DRAM dies:     {t:6.2} C");
    }

    println!("\nD2D underfill sensitivity (banke): what if future underfills improve?");
    let lambdas = [0.5, 1.5, 5.0, 15.0];
    let mut spec = explore_spec();
    // Model a custom D2D conductivity by scaling the layer thickness
    // equivalently (Rth = t/lambda): half the thickness doubles the
    // effective conductance.
    spec.d2d_thickness_um = lambdas.iter().map(|l| 20.0 * 1.5 / l).collect();
    for (lambda, t) in lambdas.iter().zip(hotspots(&spec)?) {
        println!("  lambda_D2D = {lambda:>4.1} W/m-K equivalent: {t:6.2} C");
    }
    Ok(())
}
