//! Scheme explorer: compare all five TTSV placement schemes (Table 2) on
//! a workload of your choice, including area overheads and an ASCII
//! thermal map of the processor die.
//!
//! The five schemes run as one batched sweep through the `xylem-sweep`
//! engine (sharded, retried, one built system per stack geometry); the
//! example formats the per-scheme `TaskResult`s it gets back.
//!
//! ```text
//! cargo run --release --example scheme_explorer [app] [freq_ghz]
//! cargo run --release --example scheme_explorer Barnes 2.8
//! ```

use xylem::system::default_cache_dir;
use xylem_stack::area::{AreaOverhead, SAMSUNG_WIDE_IO_DIE_AREA};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::XylemScheme;
use xylem_sweep::{run_sweep, SweepOptions, SweepSpec, TaskResult};
use xylem_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|n| {
            Benchmark::ALL
                .iter()
                .find(|b| b.name().eq_ignore_ascii_case(n))
        })
        .copied()
        .unwrap_or(Benchmark::Barnes);
    let f_ghz: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.4);

    println!(
        "workload: {} ({}, input {})",
        app,
        suite_name(app),
        app.input()
    );
    println!("frequency: {f_ghz:.1} GHz\n");

    // One sweep task per scheme, at the paper-default 64x64 grid. Task
    // ids follow the scheme axis, so records come back in ALL order.
    let spec = SweepSpec {
        schemes: XylemScheme::ALL.to_vec(),
        benchmarks: vec![app],
        f_ghz: vec![f_ghz],
        ..SweepSpec::default()
    };
    let opts = SweepOptions {
        cache_dir: Some(default_cache_dir()),
        ..SweepOptions::default()
    };
    let report = run_sweep(&spec, &opts)?;
    report.require_complete()?;
    let results: Vec<&TaskResult> = report
        .records
        .iter()
        .filter_map(|r| r.result.as_ref())
        .collect();

    let geom = DramDieGeometry::paper_default();
    println!(
        "{:10} {:>6} {:>10} {:>8} {:>11} {:>10} {:>9}",
        "scheme", "TTSVs", "area %", "proc C", "bottomDRAM", "power W", "d vs base"
    );
    let mut base_hotspot = None;
    for (scheme, t) in XylemScheme::ALL.iter().zip(&results) {
        let area = AreaOverhead::for_scheme(*scheme, &geom, SAMSUNG_WIDE_IO_DIE_AREA);
        let base = *base_hotspot.get_or_insert(t.proc_hotspot_c);
        println!(
            "{:10} {:>6} {:>10.2} {:>8.1} {:>11.1} {:>10.1} {:>9.2}",
            scheme.name(),
            area.ttsv_count,
            area.percent(),
            t.proc_hotspot_c,
            t.dram_hotspot_c,
            t.total_power_w,
            base - t.proc_hotspot_c
        );
    }

    // ASCII thermal map of the processor die under banke.
    let banke = XylemScheme::ALL
        .iter()
        .position(|s| *s == XylemScheme::BankEnhanced)
        .and_then(|i| results.get(i))
        .ok_or("banke task missing from sweep")?;
    println!(
        "\nprocessor-die thermal map (banke, {} @ {f_ghz:.1} GHz):",
        app.name()
    );
    print_map(banke);
    Ok(())
}

fn suite_name(b: Benchmark) -> &'static str {
    match b.suite() {
        xylem_workloads::benchmark::Suite::Splash2 => "SPLASH-2",
        xylem_workloads::benchmark::Suite::Parsec => "PARSEC",
        xylem_workloads::benchmark::Suite::Nas => "NAS",
    }
}

/// Renders the per-core hotspots as ASCII shades: the per-cell field is
/// internal to the sweep workers, but `TaskResult` keeps every core's
/// hotspot, which is what the 8-core map needs.
fn print_map(t: &TaskResult) {
    let shades = [" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"];
    let min = t
        .core_hotspot_c
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = t.proc_hotspot_c;
    println!("  cores (top row 1-4, bottom row 5-8); hotter = denser glyph");
    for row in [&[1usize, 2, 3, 4], &[5usize, 6, 7, 8]] {
        let mut line = String::from("  ");
        for &id in row {
            let temp = t.core_hotspot_c[id - 1];
            let idx = if max > min {
                (((temp - min) / (max - min)) * 9.0).round() as usize
            } else {
                0
            };
            line.push_str(&format!(
                "[{} core{} {:5.1}C ]",
                shades[idx.min(9)],
                id,
                temp
            ));
        }
        println!("{line}");
    }
    println!(
        "  die hotspot: {:.1} C on core {}",
        t.proc_hotspot_c,
        t.hottest_core()
    );
}
