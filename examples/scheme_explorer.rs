//! Scheme explorer: compare all five TTSV placement schemes (Table 2) on
//! a workload of your choice, including area overheads and an ASCII
//! thermal map of the processor die.
//!
//! ```text
//! cargo run --release --example scheme_explorer [app] [freq_ghz]
//! cargo run --release --example scheme_explorer Barnes 2.8
//! ```

use xylem::response::ThermalResponse;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::area::{AreaOverhead, SAMSUNG_WIDE_IO_DIE_AREA};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::XylemScheme;
use xylem_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|n| {
            Benchmark::ALL
                .iter()
                .find(|b| b.name().eq_ignore_ascii_case(n))
        })
        .copied()
        .unwrap_or(Benchmark::Barnes);
    let f_ghz: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.4);

    println!(
        "workload: {} ({}, input {})",
        app,
        suite_name(app),
        app.input()
    );
    println!("frequency: {f_ghz:.1} GHz\n");

    let geom = DramDieGeometry::paper_default();
    println!(
        "{:10} {:>6} {:>10} {:>8} {:>11} {:>10} {:>9}",
        "scheme", "TTSVs", "area %", "proc C", "bottomDRAM", "power W", "d vs base"
    );
    let mut base_hotspot = None;
    for scheme in XylemScheme::ALL {
        let mut sys = XylemSystem::new(SystemConfig::paper_default(scheme))?;
        let e = sys.evaluate_uniform(app, f_ghz)?;
        let area = AreaOverhead::for_scheme(scheme, &geom, SAMSUNG_WIDE_IO_DIE_AREA);
        let base = *base_hotspot.get_or_insert(e.proc_hotspot_c);
        println!(
            "{:10} {:>6} {:>10.2} {:>8.1} {:>11.1} {:>10.1} {:>9.2}",
            scheme.name(),
            area.ttsv_count,
            area.percent(),
            e.proc_hotspot_c,
            e.dram_hotspot_c,
            e.total_power_w,
            base - e.proc_hotspot_c
        );
    }

    // ASCII thermal map of the processor die under banke.
    let mut sys = XylemSystem::new(SystemConfig::paper_default(XylemScheme::BankEnhanced))?;
    let e = sys.evaluate_uniform(app, f_ghz)?;
    println!(
        "\nprocessor-die thermal map (banke, {} @ {f_ghz:.1} GHz):",
        app.name()
    );
    print_map(sys.response(), &e);
    Ok(())
}

fn suite_name(b: Benchmark) -> &'static str {
    match b.suite() {
        xylem_workloads::benchmark::Suite::Splash2 => "SPLASH-2",
        xylem_workloads::benchmark::Suite::Parsec => "PARSEC",
        xylem_workloads::benchmark::Suite::Nas => "NAS",
    }
}

/// Renders the processor-layer temperature field as ASCII shades,
/// downsampled to a 32x16 character map.
fn print_map(response: &ThermalResponse, _e: &xylem::Evaluation) {
    // Re-evaluate the field through the response table is not exposed per
    // cell on Evaluation; approximate with the per-core hotspots instead.
    let _ = response;
    let e = _e;
    let shades = [" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"];
    let min = e
        .core_hotspot_c
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = e.proc_hotspot_c;
    println!("  cores (top row 1-4, bottom row 5-8); hotter = denser glyph");
    for row in [&[1usize, 2, 3, 4], &[5usize, 6, 7, 8]] {
        let mut line = String::from("  ");
        for &id in row {
            let t = e.core_hotspot_c[id - 1];
            let idx = if max > min {
                (((t - min) / (max - min)) * 9.0).round() as usize
            } else {
                0
            };
            line.push_str(&format!("[{} core{} {:5.1}C ]", shades[idx.min(9)], id, t));
        }
        println!("{line}");
    }
    println!(
        "  die hotspot: {:.1} C on core {}",
        e.proc_hotspot_c,
        e.hottest_core()
    );
}
