//! Closed-loop DTM demo: request the design frequency (3.5 GHz) on the
//! base stack vs the banke stack and watch the controller throttle.
//!
//! ```text
//! cargo run --release --example dtm_trace [app] [seconds]
//! ```

use xylem::dtm::{dtm_transient, dtm_transient_phased, DtmPolicy};
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_workloads::{Benchmark, PhasedWorkload};

fn strip(samples: &[xylem::dtm::DtmSample]) -> String {
    let stride = (samples.len() / 64).max(1);
    samples
        .iter()
        .step_by(stride)
        .map(|s| {
            let t = ((s.f_ghz - 2.4) / 1.1 * 9.0).round() as u32;
            char::from_digit(t.min(9), 10).unwrap_or('?')
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|n| {
            Benchmark::ALL
                .iter()
                .find(|b| b.name().eq_ignore_ascii_case(n))
        })
        .copied()
        .unwrap_or(Benchmark::Cholesky);
    let duration: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let policy = DtmPolicy::paper_default();
    let grid = GridSpec::new(24, 24);

    println!(
        "requesting 3.5 GHz for {duration:.1} s of {app}; DTM trips at {}",
        policy.trip
    );
    for scheme in [XylemScheme::Base, XylemScheme::BankEnhanced] {
        let sys = XylemSystem::new(SystemConfig::paper_default(scheme))?;
        let r = dtm_transient(&sys, app, 3.5, duration, &policy, grid)?;
        println!(
            "\n{:6}: effective {:.2} GHz, {} throttles, peak {:.1} C",
            scheme.name(),
            r.mean_f_ghz(),
            r.throttle_events,
            r.peak_hotspot().get()
        );
        println!("  f(t) [0=2.4 .. 9=3.5 GHz]: {}", strip(&r.samples));
    }

    // Phased view on base: the warm-up phase runs at full speed, the
    // controller reins in the hot main phase.
    let sys = XylemSystem::new(SystemConfig::paper_default(XylemScheme::Base))?;
    let w = PhasedWorkload::standard(app);
    let r = dtm_transient_phased(&sys, &w, 3.5, duration, &policy, grid)?;
    println!(
        "\nbase, phased (warm-up/main/tail): effective {:.2} GHz, {} throttles",
        r.mean_f_ghz(),
        r.throttle_events
    );
    println!("  f(t): {}", strip(&r.samples));
    Ok(())
}
