//! Closed-loop DTM demo: request the design frequency (3.5 GHz) on the
//! base stack vs the banke stack and watch the controller throttle.
//!
//! The per-step trace goes through the `xylem-obs` sink (the same JSONL
//! stream `xylem dtm --metrics-out` writes) instead of an ad-hoc format:
//! every control step, solve, and recovery event lands in the metrics
//! file, and the run ends with a `RunReport` summary.
//!
//! ```text
//! cargo run --release --example dtm_trace [app] [seconds] [metrics.jsonl]
//! ```

use xylem::dtm::{dtm_transient, dtm_transient_phased, frequency_strip, DtmPolicy};
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_workloads::{Benchmark, PhasedWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|n| {
            Benchmark::ALL
                .iter()
                .find(|b| b.name().eq_ignore_ascii_case(n))
        })
        .copied()
        .unwrap_or(Benchmark::Cholesky);
    let duration: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let metrics_path = args
        .get(3)
        .cloned()
        .unwrap_or_else(|| "dtm_trace.jsonl".to_string());
    let policy = DtmPolicy::paper_default();
    let grid = GridSpec::new(24, 24);

    xylem_obs::install_file(std::path::Path::new(&metrics_path))?;
    xylem_obs::RunManifest::new("dtm_trace", app.name())
        .with("duration_s", duration)
        .with("grid", "24x24")
        .with("trip_c", policy.trip)
        .emit();

    println!(
        "requesting 3.5 GHz for {duration:.1} s of {app}; DTM trips at {}",
        policy.trip
    );
    for scheme in [XylemScheme::Base, XylemScheme::BankEnhanced] {
        let sys = XylemSystem::new(SystemConfig::paper_default(scheme))?;
        let r = dtm_transient(&sys, app, 3.5, duration, &policy, grid)?;
        println!(
            "\n{:6}: effective {:.2} GHz, {} throttles, peak {:.1} C",
            scheme.name(),
            r.mean_f_ghz(),
            r.throttle_events,
            r.peak_hotspot().get()
        );
        println!(
            "  f(t) [0=2.4 .. 9=3.5 GHz]: {}",
            frequency_strip(&r.samples, 64)
        );
    }

    // Phased view on base: the warm-up phase runs at full speed, the
    // controller reins in the hot main phase.
    let sys = XylemSystem::new(SystemConfig::paper_default(XylemScheme::Base))?;
    let w = PhasedWorkload::standard(app);
    let r = dtm_transient_phased(&sys, &w, 3.5, duration, &policy, grid)?;
    println!(
        "\nbase, phased (warm-up/main/tail): effective {:.2} GHz, {} throttles",
        r.mean_f_ghz(),
        r.throttle_events
    );
    println!("  f(t): {}", frequency_strip(&r.samples, 64));

    let report = xylem_obs::RunReport::capture();
    report.emit();
    xylem_obs::shutdown();
    println!("\n{report}[metrics written to {metrics_path}]");
    Ok(())
}
