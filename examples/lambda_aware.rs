//! Conductivity-aware techniques demo: thread placement, per-ring
//! frequency boosting, and thread migration on the `banke` stack
//! (paper Sec. 5.2 / 7.6).
//!
//! ```text
//! cargo run --release --example lambda_aware
//! ```

use xylem::lambda_aware::{boosting_experiment, placement_experiment};
use xylem::migration::{migration_experiment, MigrationConfig};
use xylem::placement::ThreadPlacement;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::proc_die::ProcDieGeometry;
use xylem_stack::XylemScheme;
use xylem_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = XylemSystem::new(SystemConfig::paper_default(XylemScheme::BankEnhanced))?;

    // The heterogeneity the techniques exploit: mean distance from each
    // core to the high-conductivity (aligned & shorted) sites.
    let sites = sys.built().high_conductivity_sites();
    let geom = ProcDieGeometry::paper_default();
    println!(
        "mean distance to the {} high-conductivity sites:",
        sites.len()
    );
    for id in 1..=8 {
        let d = geom.mean_distance_to_sites(id, &sites);
        println!(
            "  core {id} ({}): {:.2} mm",
            if ProcDieGeometry::is_inner_core(id) {
                "inner"
            } else {
                "outer"
            },
            d * 1e3
        );
    }

    // 1. Lambda-aware thread placement: 4 hot threads (LU-NAS) + 4 cool
    //    threads (IS). Placing the hot threads inside buys frequency.
    let p = placement_experiment(&mut sys, Benchmark::LuNas, Benchmark::Is)?;
    println!(
        "\nthread placement: outside {:.1} GHz, inside {:.1} GHz (+{:.0} MHz)",
        p.outside_f_ghz,
        p.inside_f_ghz,
        (p.inside_f_ghz - p.outside_f_ghz) * 1000.0
    );

    // 2. Lambda-aware frequency boosting: boost only the inner cores past
    //    the chip-wide limit.
    let b = boosting_experiment(&mut sys, Benchmark::Fft)?;
    println!(
        "frequency boosting (FFT): single {:.1} GHz, inner cores up to {:.1} GHz (+{:.0} MHz)",
        b.single_f_ghz,
        b.multiple_inner_f_ghz,
        (b.multiple_inner_f_ghz - b.single_f_ghz) * 1000.0
    );

    // 3. Lambda-aware thread migration: rotate two threads around the
    //    inner vs outer ring every 30 ms.
    let cfg = MigrationConfig {
        f_ghz: 3.2,
        ..MigrationConfig::paper_default()
    };
    let outer = migration_experiment(&sys, Benchmark::Cholesky, &ThreadPlacement::outer(), &cfg)?;
    let inner = migration_experiment(&sys, Benchmark::Cholesky, &ThreadPlacement::inner(), &cfg)?;
    println!(
        "thread migration (Cholesky @3.2 GHz): outer ring {:.2} C, inner ring {:.2} C (saves {:.2} C)",
        outer.mean_hotspot_c,
        inner.mean_hotspot_c,
        outer.mean_hotspot_c - inner.mean_hotspot_c
    );
    Ok(())
}
