//! Quickstart: build the paper's stack, run one application, and spend
//! the thermal headroom that microbump-TTSV alignment & shorting creates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xylem::headroom::max_frequency_at_iso_temperature;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::units::Celsius;
use xylem_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Benchmark::Cholesky;

    // 1. The baseline: a Wide I/O stack (8 DRAM dies over an 8-core
    //    processor) with no thermal TSVs, running at 2.4 GHz.
    let mut base = XylemSystem::new(SystemConfig::paper_default(XylemScheme::Base))?;
    let reference = base.evaluate_uniform(app, 2.4)?;
    println!(
        "base   @2.4 GHz: hotspot {:.1} C, stack power {:.1} W, {} runs in {:.1} ms",
        reference.proc_hotspot_c,
        reference.total_power_w,
        app,
        reference.exec_time_s() * 1e3,
    );

    // 2. Xylem: align and short dummy microbumps with TTSVs (the `banke`
    //    co-designed placement). Same workload, same frequency — lower
    //    temperature.
    let mut banke = XylemSystem::new(SystemConfig::paper_default(XylemScheme::BankEnhanced))?;
    let cooled = banke.evaluate_uniform(app, 2.4)?;
    println!(
        "banke  @2.4 GHz: hotspot {:.1} C ({:.1} C cooler)",
        cooled.proc_hotspot_c,
        reference.proc_hotspot_c - cooled.proc_hotspot_c
    );

    // 3. Spend the headroom: raise the DVFS point until the hotspot is
    //    back at the baseline temperature.
    let boost =
        max_frequency_at_iso_temperature(&mut banke, app, Celsius::new(reference.proc_hotspot_c))?
            .ok_or("banke should admit at least the base frequency")?;
    let gain = reference.exec_time_s() / boost.evaluation.exec_time_s() - 1.0;
    println!(
        "banke boosted:   {:.1} GHz at {:.1} C -> {:.1}% faster at iso-temperature",
        boost.f_ghz,
        boost.evaluation.proc_hotspot_c,
        gain * 100.0
    );
    Ok(())
}
