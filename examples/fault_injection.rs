//! Fault-injection drill: run the DTM loop through sensor faults and a
//! crippled solver, and watch the runtime absorb all of it.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! Three runs of the same hot workload (LU(NAS) at 3.5 GHz on the plain
//! Wide I/O stack, where throttling genuinely engages):
//!
//! 1. a healthy 4x4 sensor array — the baseline;
//! 2. the same array with a stuck-high sensor, a transient dropout of
//!    the whole array, and a spiking sensor — the plausibility filter
//!    and the fail-safe handle each in turn;
//! 3. a healthy array with the CG iteration cap starved to 2, so every
//!    control step climbs the preconditioner fallback ladder.

use xylem::dtm::{dtm_transient_configured, DtmPolicy, DtmResult, DtmRunConfig};
use xylem::sensor::{FaultKind, SensorFault, SensorModel, SensorSite};
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::SolverOptions;
use xylem_workloads::Benchmark;

fn describe(tag: &str, r: &DtmResult) {
    println!(
        "{tag:20} effective {:.2} GHz, peak {:.1} C, {:4.1}% above trip, \
         {} throttles, {} fail-safes, ladder {}/{}",
        r.mean_f_ghz(),
        r.peak_hotspot().get(),
        r.time_above_trip * 100.0,
        r.throttle_events,
        r.failsafe_events,
        r.recovery.recoveries,
        r.recovery.attempts,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = XylemSystem::new(SystemConfig::fast(XylemScheme::Base))?;
    let app = Benchmark::LuNas;
    let (freq, duration) = (3.5, 2.0);
    let grid = GridSpec::new(12, 12);
    let policy = DtmPolicy {
        control_period_s: 20e-3,
        ..DtmPolicy::paper_default()
    };
    let steps = (duration / policy.control_period_s).round() as usize;
    // A 4x4 array: denser than the realistic 2x2 default so the sensed
    // maximum tracks the true hotspot within a degree or two.
    let sensors = SensorModel {
        sites: (0..4)
            .flat_map(|qx| {
                (0..4).map(move |qy| SensorSite {
                    ix: qx * 3 + 1,
                    iy: qy * 3 + 1,
                })
            })
            .collect(),
        ..SensorModel::default_array(12, 12, 7)
    };

    // 1. Healthy sensors.
    let healthy = DtmRunConfig {
        sensors: Some(sensors.clone()),
        ..DtmRunConfig::new(policy)
    };
    let baseline = dtm_transient_configured(&sys, app, freq, duration, &healthy, grid)?;
    describe("healthy sensors:", &baseline);

    // 2. Faulted sensors: one stuck high (discarded as implausible), a
    //    mid-run blackout of the whole array (fail-safe throttle to the
    //    DVFS floor), and one spiking sensor (over-reports, which only
    //    over-throttles — the safe direction).
    let blackout_from = steps / 2;
    let mut faults = vec![SensorFault {
        sensor: 0,
        kind: FaultKind::StuckAt,
        from_step: 0,
        to_step: steps,
        value_c: 400.0,
    }];
    faults.extend((0..sensors.sites.len()).map(|sensor| SensorFault {
        sensor,
        kind: FaultKind::Dropout,
        from_step: blackout_from,
        to_step: blackout_from + 5,
        value_c: 0.0,
    }));
    faults.push(SensorFault {
        sensor: 3,
        kind: FaultKind::Spike,
        from_step: 3 * steps / 4,
        to_step: steps,
        value_c: 8.0,
    });
    let faulted = DtmRunConfig {
        sensors: Some(sensors.clone()),
        faults,
        ..DtmRunConfig::new(policy)
    };
    let under_faults = dtm_transient_configured(&sys, app, freq, duration, &faulted, grid)?;
    describe("faulted sensors:", &under_faults);

    // 3. Crippled solver: cap CG at 2 iterations so the configured AMG
    //    attempt fails every step and the fallback ladder recovers it.
    let starved = DtmRunConfig {
        sensors: Some(sensors),
        solver: Some(SolverOptions {
            max_iterations: 2,
            ..SolverOptions::default()
        }),
        ..DtmRunConfig::new(policy)
    };
    let recovered = dtm_transient_configured(&sys, app, freq, duration, &starved, grid)?;
    describe("starved solver:", &recovered);

    assert!(under_faults.failsafe_events >= 5, "blackout must fail-safe");
    assert!(
        recovered.recovery.recoveries >= steps,
        "every step must recover through the ladder"
    );
    println!("\nall three runs completed; the controller never saw a non-finite temperature.");
    Ok(())
}
