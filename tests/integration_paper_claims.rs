//! The paper's headline quantitative claims, checked end to end on
//! reduced grids (shape, ordering, and rough factors — not absolute
//! temperatures).

use xylem::headroom::max_frequency_at_iso_temperature;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::area::{AreaOverhead, SAMSUNG_WIDE_IO_DIE_AREA};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::XylemScheme;
use xylem_thermal::units::Celsius;
use xylem_workloads::Benchmark;

fn system(scheme: XylemScheme) -> XylemSystem {
    let mut cfg = SystemConfig::fast(scheme);
    cfg.cache_dir = Some(std::env::temp_dir().join("xylem-integration-cache"));
    XylemSystem::new(cfg).expect("system builds")
}

/// A reduced benchmark set spanning the compute/memory spectrum (the full
/// 17-app sweep lives in the bench harness).
const APPS: [Benchmark; 6] = [
    Benchmark::LuNas,
    Benchmark::Cholesky,
    Benchmark::Fft,
    Benchmark::Mg,
    Benchmark::Ft,
    Benchmark::Is,
];

#[test]
fn claim_area_overheads_exact() {
    // "...at an area overhead of 0.63% and 0.81%" (abstract).
    let g = DramDieGeometry::paper_default();
    let bank = AreaOverhead::for_scheme(XylemScheme::BankSurround, &g, SAMSUNG_WIDE_IO_DIE_AREA);
    let banke = AreaOverhead::for_scheme(XylemScheme::BankEnhanced, &g, SAMSUNG_WIDE_IO_DIE_AREA);
    assert!((bank.percent() - 0.63).abs() < 0.01);
    assert!((banke.percent() - 0.81).abs() < 0.01);
}

#[test]
fn claim_frequency_boosts_have_paper_shape() {
    // "...enable an average increase in processor frequency of 400 MHz
    // and 720 MHz" — we check bank gains >= 200 MHz, banke gains more
    // than bank, on every sampled app.
    let mut base = system(XylemScheme::Base);
    let mut bank = system(XylemScheme::BankSurround);
    let mut banke = system(XylemScheme::BankEnhanced);
    let mut bank_gains = Vec::new();
    let mut banke_gains = Vec::new();
    for app in APPS {
        let reference = base.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
        let fb = max_frequency_at_iso_temperature(&mut bank, app, Celsius::new(reference))
            .unwrap()
            .unwrap()
            .f_ghz;
        let fe = max_frequency_at_iso_temperature(&mut banke, app, Celsius::new(reference))
            .unwrap()
            .unwrap()
            .f_ghz;
        assert!(fe >= fb, "{app}: banke {fe} < bank {fb}");
        bank_gains.push(fb - 2.4);
        banke_gains.push(fe - 2.4);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&bank_gains) >= 0.2, "bank mean {}", mean(&bank_gains));
    assert!(
        mean(&banke_gains) > mean(&bank_gains),
        "banke {} vs bank {}",
        mean(&banke_gains),
        mean(&bank_gains)
    );
}

#[test]
fn claim_performance_gains_track_boost_and_memory_boundedness() {
    // "This improves average application performance by 11% and 18%" —
    // shape check: compute-bound apps convert their boost into more
    // speedup than memory-bound apps.
    let mut base = system(XylemScheme::Base);
    let mut banke = system(XylemScheme::BankEnhanced);
    let gain = |app: Benchmark, base: &mut XylemSystem, banke: &mut XylemSystem| {
        let e0 = base.evaluate_uniform(app, 2.4).unwrap();
        let b = max_frequency_at_iso_temperature(banke, app, Celsius::new(e0.proc_hotspot_c))
            .unwrap()
            .unwrap();
        (
            e0.exec_time_s() / b.evaluation.exec_time_s() - 1.0,
            b.f_ghz - 2.4,
        )
    };
    let (g_compute, df_c) = gain(Benchmark::LuNas, &mut base, &mut banke);
    let (g_memory, df_m) = gain(Benchmark::Is, &mut base, &mut banke);
    assert!(g_compute > 0.05, "{g_compute}");
    // Per MHz of boost, compute-bound gains more.
    assert!(
        g_compute / df_c > g_memory / df_m,
        "{g_compute}/{df_c} vs {g_memory}/{df_m}"
    );
}

#[test]
fn claim_d2d_is_the_bottleneck_numbers() {
    // Sec. 2.5: Rth(D2D) = 13.33 mm2-K/W, ~16x silicon, ~13x metal.
    use xylem_thermal::material::{D2D_AVERAGE, PROC_METAL, SILICON};
    let d2d = D2D_AVERAGE.rth_per_area(20e-6) * 1e6;
    assert!((d2d - 13.33).abs() < 0.01);
    let ratio_si = d2d / (SILICON.rth_per_area(100e-6) * 1e6);
    let ratio_m = d2d / (PROC_METAL.rth_per_area(12e-6) * 1e6);
    assert!((ratio_si - 16.0).abs() < 0.5);
    assert!((ratio_m - 13.33).abs() < 0.5);
}

#[test]
fn claim_dram_stays_cooler_than_processor_but_tracks_it() {
    // Fig. 13: the bottom DRAM die runs ~10 C below the processor and
    // benefits from the same pillars.
    let mut base = system(XylemScheme::Base);
    let mut banke = system(XylemScheme::BankEnhanced);
    for app in [Benchmark::Cholesky, Benchmark::Ft] {
        let eb = base.evaluate_uniform(app, 2.4).unwrap();
        let gap = eb.proc_hotspot_c - eb.dram_hotspot_c;
        assert!((1.0..20.0).contains(&gap), "{app}: gap {gap}");
        let ee = banke.evaluate_uniform(app, 2.4).unwrap();
        assert!(ee.dram_hotspot_c < eb.dram_hotspot_c, "{app}");
    }
}

#[test]
fn claim_frequency_throttling_needed_at_base() {
    // "the temperature in base approaches Tj,max even at 2.4 GHz for some
    // applications" and exceeds it at higher frequencies.
    let mut base = system(XylemScheme::Base);
    let hot = base.evaluate_uniform(Benchmark::LuNas, 2.4).unwrap();
    assert!(hot.proc_hotspot_c > 90.0, "{}", hot.proc_hotspot_c);
    let over = base.evaluate_uniform(Benchmark::LuNas, 3.5).unwrap();
    assert!(over.proc_hotspot_c > 100.0, "{}", over.proc_hotspot_c);
}
