//! End-to-end integration: workload -> archsim -> power -> thermal, across
//! crates, on reduced grids.

use xylem::headroom::{max_frequency_at_iso_temperature, max_frequency_under_limits};
use xylem::placement::ThreadPlacement;
use xylem::system::{Instance, RunSpec, SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::units::Celsius;
use xylem_workloads::Benchmark;

fn system(scheme: XylemScheme) -> XylemSystem {
    let mut cfg = SystemConfig::fast(scheme);
    cfg.cache_dir = Some(std::env::temp_dir().join("xylem-integration-cache"));
    XylemSystem::new(cfg).expect("system builds")
}

#[test]
fn full_chain_produces_consistent_evaluation() {
    let mut sys = system(XylemScheme::BankEnhanced);
    let e = sys.evaluate_uniform(Benchmark::Fft, 2.8).unwrap();
    // Temperatures ordered: processor (bottom) hotter than DRAM, both
    // above ambient.
    assert!(e.proc_hotspot_c > e.dram_hotspot_c);
    assert!(e.dram_hotspot_c > 45.0);
    // Power decomposition adds up.
    assert!((e.proc_power_w + e.dram_power_w - e.total_power_w).abs() < 1e-9);
    // Per-core hotspots bounded by the die hotspot.
    for &t in &e.core_hotspot_c {
        assert!(t <= e.proc_hotspot_c + 1e-9);
    }
    // Performance metrics present and positive.
    assert!(e.exec_time_s() > 0.0);
    assert!(e.stack_energy_j() > 0.0);
}

#[test]
fn scheme_ordering_holds_end_to_end() {
    // For every scheme pair the paper orders, the full chain agrees:
    // banke <= isoCount <= bank <= prior ~= base (hotspot at 2.4 GHz).
    let app = Benchmark::Radiosity;
    let temp = |s: XylemScheme| system(s).evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
    let base = temp(XylemScheme::Base);
    let bank = temp(XylemScheme::BankSurround);
    let banke = temp(XylemScheme::BankEnhanced);
    let iso = temp(XylemScheme::IsoCount);
    let prior = temp(XylemScheme::Prior);
    assert!(banke < iso, "banke {banke} vs isoCount {iso}");
    assert!(iso < bank, "isoCount {iso} vs bank {bank}");
    assert!(bank < base, "bank {bank} vs base {base}");
    assert!((prior - base).abs() < 1.0, "prior {prior} vs base {base}");
}

#[test]
fn iso_temperature_boost_chain() {
    let app = Benchmark::Lu;
    let mut base = system(XylemScheme::Base);
    let reference = base.evaluate_uniform(app, 2.4).unwrap();
    let mut banke = system(XylemScheme::BankEnhanced);
    let boost =
        max_frequency_at_iso_temperature(&mut banke, app, Celsius::new(reference.proc_hotspot_c))
            .unwrap()
            .expect("banke admits 2.4");
    assert!(boost.f_ghz > 2.4);
    // Boosted run is faster but not hotter than the reference.
    assert!(boost.evaluation.exec_time_s() < reference.exec_time_s());
    assert!(boost.evaluation.proc_hotspot_c <= reference.proc_hotspot_c + 1e-9);
    // And burns more power (the headroom is spent, not saved).
    assert!(boost.evaluation.total_power_w > reference.total_power_w);
}

#[test]
fn dtm_respects_both_limits() {
    let mut sys = system(XylemScheme::BankEnhanced);
    for app in [Benchmark::LuNas, Benchmark::Is] {
        let out = max_frequency_under_limits(&mut sys, app).unwrap().unwrap();
        assert!(out.evaluation.proc_hotspot_c <= 100.0 + 1e-9, "{app}");
        assert!(out.evaluation.dram_hotspot_c <= 95.0 + 1e-9, "{app}");
    }
}

#[test]
fn mixed_instances_and_partial_occupancy() {
    let mut sys = system(XylemScheme::BankSurround);
    let run = RunSpec {
        instances: vec![
            Instance {
                benchmark: Benchmark::Cholesky,
                placement: ThreadPlacement::inner(),
                f_ghz: 2.6,
            },
            Instance {
                benchmark: Benchmark::Ft,
                placement: ThreadPlacement::outer(),
                f_ghz: 2.4,
            },
        ],
        uncore_f_ghz: 2.4,
    };
    let e = sys.evaluate(&run).unwrap();
    assert_eq!(e.workloads.len(), 2);
    // The compute-bound instance dominates the thermal picture: the
    // hottest core is one of the inner cores it runs on.
    assert!(
        [2usize, 3, 6, 7].contains(&e.hottest_core()),
        "hottest core {}",
        e.hottest_core()
    );
}

#[test]
fn response_cache_survives_reuse_across_systems() {
    // Two constructions of the same scheme share the disk cache and
    // produce identical evaluations.
    let e1 = system(XylemScheme::Base)
        .evaluate_uniform(Benchmark::Sp, 2.4)
        .unwrap();
    let e2 = system(XylemScheme::Base)
        .evaluate_uniform(Benchmark::Sp, 2.4)
        .unwrap();
    assert_eq!(e1.proc_hotspot_c, e2.proc_hotspot_c);
    assert_eq!(e1.total_power_w, e2.total_power_w);
}
