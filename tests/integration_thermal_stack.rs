//! Integration of the stack builder with the thermal solver: direct
//! (non-superposed) solves of full paper stacks.

use xylem_stack::builder::StackConfig;
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::Watts;

const GRID: usize = 24;

fn solve_hotspot(scheme: XylemScheme, watts_proc: f64) -> (f64, f64) {
    let built = StackConfig::paper_default(scheme).build().unwrap();
    let model = built.stack().discretize(GridSpec::new(GRID, GRID)).unwrap();
    let mut p = PowerMap::zeros(&model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(watts_proc));
    for &l in built.dram_metal_layers() {
        p.add_uniform_layer_power(l, Watts::new(0.35));
    }
    let t = model.steady_state(&p).unwrap();
    (
        t.max_of_layer(built.proc_metal_layer()).get(),
        t.max_of_layer(built.bottom_dram_metal_layer()).get(),
    )
}

#[test]
fn pillars_cool_both_processor_and_dram() {
    let (p_base, d_base) = solve_hotspot(XylemScheme::Base, 20.0);
    let (p_banke, d_banke) = solve_hotspot(XylemScheme::BankEnhanced, 20.0);
    assert!(p_banke < p_base - 2.0, "{p_banke} vs {p_base}");
    assert!(d_banke < d_base - 2.0, "{d_banke} vs {d_base}");
}

#[test]
fn prior_without_shorting_is_ineffective() {
    let (p_base, _) = solve_hotspot(XylemScheme::Base, 20.0);
    let (p_prior, _) = solve_hotspot(XylemScheme::Prior, 20.0);
    // TTSVs alone (no D2D pillars) barely move the needle — the paper's
    // central negative result.
    assert!((p_base - p_prior).abs() < 0.5, "{p_base} vs {p_prior}");
}

#[test]
fn temperature_gradient_down_the_stack() {
    // Processor (farthest from sink) is hottest; every DRAM die going up
    // is cooler.
    let built = StackConfig::paper_default(XylemScheme::Base)
        .build()
        .unwrap();
    let model = built.stack().discretize(GridSpec::new(GRID, GRID)).unwrap();
    let mut p = PowerMap::zeros(&model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(18.0));
    for &l in built.dram_metal_layers() {
        p.add_uniform_layer_power(l, Watts::new(0.35));
    }
    let t = model.steady_state(&p).unwrap();
    let proc = t.mean_of_layer(built.proc_metal_layer()).get();
    let mut prev = proc;
    for &l in built.dram_metal_layers().iter().rev() {
        let cur = t.mean_of_layer(l).get();
        assert!(cur < prev + 1e-6, "die layer {l}: {cur} vs below {prev}");
        prev = cur;
    }
}

#[test]
fn d2d_layers_carry_the_largest_drops() {
    // The mean temperature drop across any D2D layer exceeds the drop
    // across the adjacent silicon layers — the Sec. 2.5 claim, measured
    // on the solved field.
    let built = StackConfig::paper_default(XylemScheme::Base)
        .build()
        .unwrap();
    let model = built.stack().discretize(GridSpec::new(GRID, GRID)).unwrap();
    let mut p = PowerMap::zeros(&model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(18.0));
    let t = model.steady_state(&p).unwrap();
    // Drop across the bottom D2D (between proc si and the die above).
    let below = t.mean_of_layer(built.proc_si_layer());
    let d2d = built.d2d_layers()[7];
    let above = t.mean_of_layer(built.dram_metal_layers()[7]);
    let drop_d2d = below - above;
    // Drop across the processor's own silicon layer.
    let drop_si = t.mean_of_layer(built.proc_metal_layer()) - below;
    assert!(
        drop_d2d > 4.0 * drop_si,
        "d2d drop {drop_d2d} vs si drop {drop_si} (layer {d2d})"
    );
}

#[test]
fn grid_refinement_changes_hotspot_mildly() {
    // 16 -> 32 grid: hotspot moves by a bounded amount for a uniform load
    // (discretization is converging; the 450 um pillar patches rasterize
    // coarsely at 16x16, so a ~2.5 C shift remains).
    let built = StackConfig::paper_default(XylemScheme::BankSurround)
        .build()
        .unwrap();
    let mut hot = Vec::new();
    for n in [16usize, 32] {
        let model = built.stack().discretize(GridSpec::new(n, n)).unwrap();
        let mut p = PowerMap::zeros(&model);
        p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(20.0));
        hot.push(
            model
                .steady_state(&p)
                .unwrap()
                .max_of_layer(built.proc_metal_layer()),
        );
    }
    assert!((hot[0] - hot[1]).abs() < 3.5, "{hot:?}");
}

#[test]
fn die_count_monotonically_heats_processor() {
    let mut prev = 0.0;
    for n in [4usize, 8, 12] {
        let mut cfg = StackConfig::paper_default(XylemScheme::Base);
        cfg.n_dram_dies = n;
        let built = cfg.build().unwrap();
        let model = built.stack().discretize(GridSpec::new(16, 16)).unwrap();
        let mut p = PowerMap::zeros(&model);
        p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(18.0));
        for &l in built.dram_metal_layers() {
            p.add_uniform_layer_power(l, Watts::new(0.35));
        }
        let hot = model
            .steady_state(&p)
            .unwrap()
            .max_of_layer(built.proc_metal_layer());
        assert!(hot > prev, "{n} dies: {hot} vs {prev}");
        prev = hot.get();
    }
}
