//! Golden paper-claims suite: the ✅ rows of EXPERIMENTS.md as an
//! executable regression suite, on a 32x32 grid with tolerances inline.
//!
//! EXPERIMENTS.md graduates from a manually-refreshed document to CI:
//! each test names the row it locks in, and a failure means a shape
//! claim drifted — fix the regression or update the doc *and* the test
//! together. Runs via `./ci.sh golden` (release) and with the normal
//! workspace test suite.
//!
//! Rows covered (10): Table 1, Table 2, Table 3, §7.1 area overheads,
//! §2.5 Rth ratios, Fig. 7 (prior ≈ base, pillars cooler), Fig. 10
//! geomean-gain ordering, Fig. 13 DRAM-below-processor, Fig. 18 die
//! thickness, Fig. 19 memory-die count.

use xylem::headroom::max_frequency_at_iso_temperature;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::area::{AreaOverhead, SAMSUNG_WIDE_IO_DIE_AREA};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::{StackConfig, XylemScheme};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::{Celsius, Watts};
use xylem_workloads::Benchmark;

/// All headroom/evaluation tests run on this grid (the ISSUE-4 golden
/// contract): small enough for seconds-scale solves, large enough to
/// engage the parallel CSR path.
const GRID: usize = 32;

/// A system at the golden grid with a persistent response cache shared
/// across tests and runs (first use per scheme+config pays ~89 unit
/// solves; everything after loads from disk).
fn system(scheme: XylemScheme) -> XylemSystem {
    let mut cfg = SystemConfig::paper_default(scheme);
    cfg.grid = GridSpec::new(GRID, GRID);
    cfg.cache_dir = Some(std::env::temp_dir().join("xylem-golden-cache"));
    XylemSystem::new(cfg).expect("system builds")
}

/// Reduced benchmark set spanning the compute/memory spectrum (the full
/// 17-app sweep lives in the bench harness).
const APPS: [Benchmark; 6] = [
    Benchmark::LuNas,
    Benchmark::Cholesky,
    Benchmark::Fft,
    Benchmark::Mg,
    Benchmark::Ft,
    Benchmark::Is,
];

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Table 1 layers/λ — identical by construction".
// ---------------------------------------------------------------------
#[test]
fn golden_table1_layer_dimensions() {
    let built = StackConfig::paper_default(XylemScheme::Base)
        .build()
        .expect("stack builds");
    let cfg = built.config();
    // Table 1 dimensions, exact.
    assert!((cfg.die_thickness - 100e-6).abs() < 1e-12, "die 100 um");
    assert!((cfg.d2d_thickness - 20e-6).abs() < 1e-12, "D2D 20 um");
    assert!(
        (cfg.dram_metal_thickness - 2e-6).abs() < 1e-12,
        "DRAM metal 2 um"
    );
    assert!(
        (cfg.proc_metal_thickness - 12e-6).abs() < 1e-12,
        "proc metal 12 um"
    );
    assert_eq!(cfg.n_dram_dies, 8, "8 DRAM dies");
    let p = built.stack().package();
    assert!((p.sink_side() - 6e-2).abs() < 1e-12, "sink 6 cm side");
    assert!((p.spreader_side() - 3e-2).abs() < 1e-12, "IHS 3 cm side");
    assert!((p.tim_thickness() - 50e-6).abs() < 1e-12, "TIM 50 um");
    // The stack must really carry one si + metal + d2d triplet per die.
    assert_eq!(built.dram_metal_layers().len(), 8);
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Table 2 schemes — 0/28/36/28/36 TTSVs".
// ---------------------------------------------------------------------
#[test]
fn golden_table2_ttsv_counts() {
    let g = DramDieGeometry::paper_default();
    let expected = [
        (XylemScheme::Base, 0usize, false),
        (XylemScheme::BankSurround, 28, true),
        (XylemScheme::BankEnhanced, 36, true),
        (XylemScheme::IsoCount, 28, true),
        (XylemScheme::Prior, 36, false),
    ];
    for (scheme, count, aligned) in expected {
        assert_eq!(scheme.ttsv_count(&g), count, "{scheme} TTSV count");
        assert_eq!(
            scheme.aligned_and_shorted(),
            aligned,
            "{scheme} aligned+shorted"
        );
    }
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Table 3 arch — identical".
// ---------------------------------------------------------------------
#[test]
fn golden_table3_arch_parameters() {
    let c = xylem_archsim::ArchConfig::paper_default();
    assert_eq!(c.cores, 8);
    assert_eq!(c.issue_width, 4);
    assert_eq!(c.l1i.size, 32 * 1024);
    assert_eq!(c.l1d.size, 32 * 1024);
    assert_eq!(c.l2.size, 256 * 1024);
    assert_eq!(c.l2.ways, 8);
    assert_eq!(c.bus_width_bits, 512);
    assert!((c.t_j_max - 100.0).abs() < 1e-12, "T_j,max 100 C");
    assert!((c.t_dram_max - 95.0).abs() < 1e-12, "T_dram,max 95 C");
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "§7.1 area overhead — exactly 0.4032 mm2 / 0.63%,
// 0.5184 mm2 / 0.81%".
// ---------------------------------------------------------------------
#[test]
fn golden_area_overheads_exact() {
    let g = DramDieGeometry::paper_default();
    let bank = AreaOverhead::for_scheme(XylemScheme::BankSurround, &g, SAMSUNG_WIDE_IO_DIE_AREA);
    let banke = AreaOverhead::for_scheme(XylemScheme::BankEnhanced, &g, SAMSUNG_WIDE_IO_DIE_AREA);
    assert!((bank.total_area * 1e6 - 0.4032).abs() < 5e-4, "bank mm2");
    assert!((bank.percent() - 0.63).abs() < 0.01, "bank %");
    assert!((banke.total_area * 1e6 - 0.5184).abs() < 5e-4, "banke mm2");
    assert!((banke.percent() - 0.81).abs() < 0.01, "banke %");
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "§2.5 Rth — D2D 13.33 mm2K/W; ≈16x Si, ≈13x
// metal; pillar 0.46 (≈30x lower)".
// ---------------------------------------------------------------------
#[test]
fn golden_rth_ratios() {
    use xylem_thermal::material::{shorted_pillar_d2d, D2D_AVERAGE, PROC_METAL, SILICON};
    let d2d = D2D_AVERAGE.rth_per_area(20e-6) * 1e6;
    assert!((d2d - 13.33).abs() < 0.01, "D2D Rth {d2d}");
    let ratio_si = d2d / (SILICON.rth_per_area(100e-6) * 1e6);
    let ratio_metal = d2d / (PROC_METAL.rth_per_area(12e-6) * 1e6);
    assert!((ratio_si - 16.0).abs() < 0.5, "vs Si {ratio_si}");
    assert!((ratio_metal - 13.33).abs() < 0.5, "vs metal {ratio_metal}");
    let pillar = shorted_pillar_d2d(20e-6).rth_per_area(20e-6) * 1e6;
    assert!((pillar - 0.46).abs() < 0.02, "pillar Rth {pillar}");
    assert!(d2d / pillar > 25.0, "pillar advantage {}", d2d / pillar);
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Fig. 7 — bank/banke clearly cooler at every f;
// prior ≈ base" (steady hotspots at 2.4 GHz).
// ---------------------------------------------------------------------
#[test]
fn golden_fig7_prior_matches_base_and_pillars_cool() {
    let mut base = system(XylemScheme::Base);
    let mut prior = system(XylemScheme::Prior);
    let mut banke = system(XylemScheme::BankEnhanced);
    for app in [Benchmark::LuNas, Benchmark::Is] {
        let tb = base
            .evaluate_uniform(app, 2.4)
            .expect("base evaluates")
            .proc_hotspot_c;
        let tp = prior
            .evaluate_uniform(app, 2.4)
            .expect("prior evaluates")
            .proc_hotspot_c;
        let te = banke
            .evaluate_uniform(app, 2.4)
            .expect("banke evaluates")
            .proc_hotspot_c;
        // Unaligned/unshorted TTSVs buy nothing: within 0.5 C of base.
        assert!((tp - tb).abs() < 0.5, "{app}: prior {tp} vs base {tb}");
        // Aligned+shorted pillars clearly cool: >= 2 C below base.
        assert!(te < tb - 2.0, "{app}: banke {te} vs base {tb}");
    }
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Fig. 10 perf gain — bank +14.2%, banke +16.6%
// geomean" (ordering base < bank < banke; magnitudes are loose).
// ---------------------------------------------------------------------
#[test]
fn golden_fig10_geomean_gain_ordering() {
    let mut base = system(XylemScheme::Base);
    let mut bank = system(XylemScheme::BankSurround);
    let mut banke = system(XylemScheme::BankEnhanced);
    let mut gains_bank = Vec::new();
    let mut gains_banke = Vec::new();
    for app in APPS {
        let e0 = base.evaluate_uniform(app, 2.4).expect("base evaluates");
        let reference = Celsius::new(e0.proc_hotspot_c);
        let boosted = |sys: &mut XylemSystem| -> f64 {
            let b = max_frequency_at_iso_temperature(sys, app, reference)
                .expect("search runs")
                .expect("cooler schemes admit 2.4 GHz");
            e0.exec_time_s() / b.evaluation.exec_time_s()
        };
        gains_bank.push(boosted(&mut bank));
        gains_banke.push(boosted(&mut banke));
    }
    let g_bank = geomean(&gains_bank);
    let g_banke = geomean(&gains_banke);
    // Paper: +11% / +18%. Golden contract: both schemes gain >= 2%, and
    // banke's geomean gain is at least bank's (ordering bank < banke,
    // with a 0.1% float guard).
    assert!(g_bank > 1.02, "bank geomean {g_bank}");
    assert!(g_banke > 1.02, "banke geomean {g_banke}");
    assert!(
        g_banke >= g_bank - 0.001,
        "ordering: banke {g_banke} < bank {g_bank}"
    );
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Fig. 13 bottom DRAM — 6-9 C below the processor;
// bank/banke reduce it".
// ---------------------------------------------------------------------
#[test]
fn golden_fig13_dram_below_processor() {
    let mut base = system(XylemScheme::Base);
    let mut banke = system(XylemScheme::BankEnhanced);
    for app in [Benchmark::Cholesky, Benchmark::Ft] {
        let eb = base.evaluate_uniform(app, 2.4).expect("base evaluates");
        let ee = banke.evaluate_uniform(app, 2.4).expect("banke evaluates");
        assert!(
            eb.dram_hotspot_c < eb.proc_hotspot_c - 2.0,
            "{app}: DRAM {} not below proc {}",
            eb.dram_hotspot_c,
            eb.proc_hotspot_c
        );
        // Pillars cool the DRAM too (>= 1 C at 2.4 GHz).
        assert!(
            ee.dram_hotspot_c < eb.dram_hotspot_c - 1.0,
            "{app}: banke DRAM {} vs base {}",
            ee.dram_hotspot_c,
            eb.dram_hotspot_c
        );
    }
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Fig. 18 die thickness — 50 um hottest (headline
// trend: thinner = hotter)". 100 vs 200 um is within 1 C in our
// reproduction and deliberately not ordered here.
// ---------------------------------------------------------------------
#[test]
fn golden_fig18_die_thickness_thinner_is_hotter() {
    let hotspot = |t_um: f64| -> f64 {
        let mut cfg = SystemConfig::paper_default(XylemScheme::Base);
        cfg.grid = GridSpec::new(GRID, GRID);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-golden-cache"));
        cfg.stack.die_thickness = t_um * 1e-6;
        let mut sys = XylemSystem::new(cfg).expect("system builds");
        sys.evaluate_uniform(Benchmark::LuNas, 2.4)
            .expect("evaluates")
            .proc_hotspot_c
    };
    let t50 = hotspot(50.0);
    let t100 = hotspot(100.0);
    let t200 = hotspot(200.0);
    assert!(t50 > t100, "50 um {t50} not hotter than 100 um {t100}");
    assert!(t50 > t200, "50 um {t50} not hotter than 200 um {t200}");
    // And the sweep stays physical: all within the plausible die range.
    for t in [t50, t100, t200] {
        assert!((40.0..150.0).contains(&t), "hotspot {t} out of range");
    }
}

// ---------------------------------------------------------------------
// EXPERIMENTS.md row: "Fig. 19 memory dies — more dies = hotter
// (4 < 8 < 12); Xylem flattens the slope". Direct steady solves with
// per-die power: the trend needs no archsim loop.
// ---------------------------------------------------------------------
#[test]
fn golden_fig19_more_memory_dies_run_hotter() {
    let hotspot = |scheme: XylemScheme, n: usize| -> f64 {
        let mut cfg = StackConfig::paper_default(scheme);
        cfg.n_dram_dies = n;
        let built = cfg.build().expect("stack builds");
        let model = built
            .stack()
            .discretize(GridSpec::new(GRID, GRID))
            .expect("discretizes");
        let mut p = PowerMap::zeros(&model);
        p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(20.0));
        for &l in built.dram_metal_layers() {
            p.add_uniform_layer_power(l, Watts::new(0.4));
        }
        model
            .steady_state(&p)
            .expect("solves")
            .max_of_layer(built.proc_metal_layer())
            .get()
    };
    let base: Vec<f64> = [4, 8, 12]
        .iter()
        .map(|&n| hotspot(XylemScheme::Base, n))
        .collect();
    assert!(
        base[0] < base[1] - 0.5,
        "base 4 {} vs 8 {}",
        base[0],
        base[1]
    );
    assert!(
        base[1] < base[2] - 0.5,
        "base 8 {} vs 12 {}",
        base[1],
        base[2]
    );
    // Xylem flattens the slope: banke's 4->12 rise is smaller than base's.
    let banke: Vec<f64> = [4, 8, 12]
        .iter()
        .map(|&n| hotspot(XylemScheme::BankEnhanced, n))
        .collect();
    let slope_base = base[2] - base[0];
    let slope_banke = banke[2] - banke[0];
    assert!(
        slope_banke < slope_base * 0.95,
        "banke slope {slope_banke} not flatter than base {slope_base}"
    );
}
